package benders

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"rentplan/internal/lotsize"
	"rentplan/internal/lp"
)

// TestNestedParallelAgreementFuzz pins the determinism contract of the
// parallel passes: every worker count must reproduce the serial run
// bit-for-bit — bounds, decisions, and every cut/solve counter.
func TestNestedParallelAgreementFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	shapes := [][]int{{2}, {3, 2}, {2, 2, 2}, {4, 3}, {2, 3, 2}}
	for trial := 0; trial < 12; trial++ {
		shape := shapes[trial%len(shapes)]
		eps := 0.0
		if trial%3 == 2 {
			eps = rng.Float64()
		}
		tp := randomTreeProblem(rng, shape, eps)
		var ref *NestedResult
		for _, workers := range []int{1, 4, 8} {
			res, err := SolveTreeLP(tp, NestedOptions{Workers: workers})
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			if workers == 1 {
				ref = res
				if !res.Converged {
					t.Fatalf("trial %d: serial run did not converge (gap %v)", trial, res.Cost-res.Bound)
				}
				continue
			}
			if *res != *ref {
				t.Fatalf("trial %d workers %d: result diverged from serial\n got %+v\nwant %+v",
					trial, workers, res, ref)
			}
		}
	}
}

// TestNestedParallelMatchesExtensive re-runs the extensive-form check with
// multiple workers and a tiny warehouse, exercising eviction (version
// bumps force cold re-solves) without losing correctness.
func TestNestedParallelMatchesExtensive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 6; trial++ {
		tp := randomTreeProblem(rng, []int{3, 2, 2}, 0)
		res, err := SolveTreeLP(tp, NestedOptions{Workers: 4, WarehouseCap: 3})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Converged {
			t.Fatalf("trial %d: no convergence with a tiny warehouse (gap %v)", trial, res.Cost-res.Bound)
		}
		if res.CutsEvicted == 0 {
			t.Fatalf("trial %d: cap 3 run never evicted, the aging path was not exercised", trial)
		}
		ext := treeLPRelaxation(tp)
		esol, err := lp.Solve(ext)
		if err != nil || esol.Status != lp.StatusOptimal {
			t.Fatalf("trial %d: extensive: %v %v", trial, esol, err)
		}
		if math.Abs(res.Bound-esol.Obj) > 1e-5*(1+math.Abs(esol.Obj)) {
			t.Fatalf("trial %d: nested %v != extensive %v", trial, res.Bound, esol.Obj)
		}
	}
}

// TestNestedWarmStartStatsAndAgreement checks that warm starts and the
// backward memo actually fire, save solves, and leave the optimum intact.
func TestNestedWarmStartStatsAndAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	tp := randomTreeProblem(rng, []int{3, 2, 2}, 0.3)
	cold, err := SolveTreeLP(tp, NestedOptions{NoWarmStart: true})
	if err != nil || !cold.Converged {
		t.Fatalf("cold: %v %+v", err, cold)
	}
	warm, err := SolveTreeLP(tp, NestedOptions{})
	if err != nil || !warm.Converged {
		t.Fatalf("warm: %v %+v", err, warm)
	}
	if math.Abs(warm.Bound-cold.Bound) > 1e-6*(1+math.Abs(cold.Bound)) {
		t.Fatalf("warm bound %v, cold %v", warm.Bound, cold.Bound)
	}
	if cold.WarmSolves != 0 || cold.MemoHits != 0 {
		t.Fatalf("NoWarmStart run reported warm activity: %+v", cold)
	}
	if warm.WarmSolves == 0 {
		t.Fatal("warm run never reused a basis")
	}
	if warm.MemoHits == 0 {
		t.Fatal("warm run never served a backward solve from the memo")
	}
	if warm.VertexSolves >= cold.VertexSolves {
		t.Fatalf("memoisation saved nothing: warm %d solves, cold %d", warm.VertexSolves, cold.VertexSolves)
	}
}

func TestNestedCancelMidForwardPass(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	tp := randomTreeProblem(rng, []int{3, 2, 2}, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	nestedHookForward = func(iter, stage int) {
		if iter == 2 && stage == 1 {
			cancel()
		}
	}
	defer func() { nestedHookForward = nil }()
	res, err := SolveTreeLPCtx(ctx, tp, NestedOptions{Workers: 4})
	if err == nil || res != nil {
		t.Fatalf("mid-forward cancellation returned %+v, %v", res, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if !strings.Contains(err.Error(), "forward stage 1") {
		t.Fatalf("error does not locate the canceled stage: %v", err)
	}
}

func TestNestedCancelMidBackwardPass(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	tp := randomTreeProblem(rng, []int{3, 2, 2}, 0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := false
	nestedHookBackward = func(iter, stage int) {
		if !fired {
			fired = true
			cancel()
		}
	}
	defer func() { nestedHookBackward = nil }()
	res, err := SolveTreeLPCtx(ctx, tp, NestedOptions{Workers: 4})
	if !fired {
		t.Fatal("backward pass never ran")
	}
	if err == nil || res != nil {
		t.Fatalf("mid-backward cancellation returned %+v, %v", res, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not wrap context.Canceled: %v", err)
	}
	if !strings.Contains(err.Error(), "backward stage") {
		t.Fatalf("error does not locate the canceled stage: %v", err)
	}
}

// TestValidateTreeRejectsBadData is the table-driven sweep over the data
// classes validateTree must reject: non-finite or negative coefficients,
// out-of-range probabilities, and slice mismatches.
func TestValidateTreeRejectsBadData(t *testing.T) {
	base := func() *lotsize.TreeProblem {
		return &lotsize.TreeProblem{
			Parent:           []int{-1, 0, 0},
			Prob:             []float64{1, 0.5, 0.5},
			Setup:            []float64{1, 1, 1},
			Unit:             []float64{0.1, 0.1, 0.1},
			Hold:             []float64{0.2, 0.2, 0.2},
			Demand:           []float64{1, 2, 3},
			InitialInventory: 0.5,
		}
	}
	if err := validateTree(base()); err != nil {
		t.Fatalf("valid base rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(tp *lotsize.TreeProblem)
		want   string
	}{
		{"nan demand", func(tp *lotsize.TreeProblem) { tp.Demand[1] = math.NaN() }, "demand"},
		{"inf demand", func(tp *lotsize.TreeProblem) { tp.Demand[2] = math.Inf(1) }, "demand"},
		{"negative demand", func(tp *lotsize.TreeProblem) { tp.Demand[0] = -1 }, "demand"},
		{"nan setup", func(tp *lotsize.TreeProblem) { tp.Setup[0] = math.NaN() }, "setup"},
		{"inf setup", func(tp *lotsize.TreeProblem) { tp.Setup[2] = math.Inf(1) }, "setup"},
		{"negative unit", func(tp *lotsize.TreeProblem) { tp.Unit[1] = -0.1 }, "unit"},
		{"inf unit", func(tp *lotsize.TreeProblem) { tp.Unit[1] = math.Inf(-1) }, "unit"},
		{"nan hold", func(tp *lotsize.TreeProblem) { tp.Hold[2] = math.NaN() }, "holding"},
		{"zero prob", func(tp *lotsize.TreeProblem) { tp.Prob[2] = 0 }, "probability"},
		{"negative prob", func(tp *lotsize.TreeProblem) { tp.Prob[1] = -0.5 }, "probability"},
		{"nan prob", func(tp *lotsize.TreeProblem) { tp.Prob[1] = math.NaN() }, "probability"},
		{"inf prob", func(tp *lotsize.TreeProblem) { tp.Prob[1] = math.Inf(1) }, "probability"},
		{"prob above one", func(tp *lotsize.TreeProblem) { tp.Prob[1] = 1.5 }, "probability"},
		{"short prob", func(tp *lotsize.TreeProblem) { tp.Prob = tp.Prob[:2] }, "mismatch"},
		{"short setup", func(tp *lotsize.TreeProblem) { tp.Setup = tp.Setup[:2] }, "mismatch"},
		{"short unit", func(tp *lotsize.TreeProblem) { tp.Unit = tp.Unit[:1] }, "mismatch"},
		{"short hold", func(tp *lotsize.TreeProblem) { tp.Hold = tp.Hold[:2] }, "mismatch"},
		{"short demand", func(tp *lotsize.TreeProblem) { tp.Demand = tp.Demand[:2] }, "mismatch"},
		{"negative inventory", func(tp *lotsize.TreeProblem) { tp.InitialInventory = -1 }, "inventory"},
		{"nan inventory", func(tp *lotsize.TreeProblem) { tp.InitialInventory = math.NaN() }, "inventory"},
		{"inf inventory", func(tp *lotsize.TreeProblem) { tp.InitialInventory = math.Inf(1) }, "inventory"},
		{"bad root", func(tp *lotsize.TreeProblem) { tp.Parent[0] = 0 }, "root"},
		{"non-topological parent", func(tp *lotsize.TreeProblem) { tp.Parent[1] = 2 }, "topological"},
	}
	for _, c := range cases {
		tp := base()
		c.mutate(tp)
		err := validateTree(tp)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		// The public entry point must reject the same instance.
		if _, serr := SolveTreeLP(tp, NestedOptions{}); serr == nil {
			t.Errorf("%s: SolveTreeLP accepted", c.name)
		}
	}
}
