package benders

import (
	"sync"
	"sync/atomic"
)

// parallelFor runs fn(i) for every i in [0, n) on at most workers
// goroutines. workers ≤ 1 (or n ≤ 1) runs the loop inline on the calling
// goroutine — the serial reference path with zero scheduling overhead,
// mirroring the worker-pool convention of internal/mip.
//
// Callers must write results only to disjoint per-index slots and combine
// them after parallelFor returns, in index order; under that discipline the
// observable outcome is bit-identical for every worker count, which is the
// determinism contract the nondeterm analyzer protects in this package.
func parallelFor(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
