package benders

import (
	"math"

	"rentplan/internal/num"
)

// storedCut is one optimality cut θ ≥ a·β + r kept in a vertex warehouse.
type storedCut struct {
	a, r float64
	// lastUse is the value of the owning vertex's solve clock the last time
	// the cut was stored, re-derived (dedup hit), or binding in an optimal
	// vertex LP. It drives the LRU aging of the warehouse.
	lastUse int
}

// cutWarehouse is the bounded per-vertex cut store of the nested L-shaped
// solver. It deduplicates incoming cuts against the stored ones (two cuts
// whose slope and intercept coincide within num.CutDedupTol constrain the
// same half-plane, so keeping both only bloats the vertex LP) and ages out
// the least-recently-used cut when the store exceeds its capacity.
//
// Every mutation is performed by the single goroutine that owns the vertex
// in the current pass, and the sequence of mutations is identical for every
// worker count, so the warehouse contents — and therefore the cut ordering
// in the vertex LPs — are deterministic.
type cutWarehouse struct {
	cuts []storedCut
	// cap bounds len(cuts); ≤0 means unbounded.
	cap int
	// version increments whenever a stored cut is evicted. A basis snapshot
	// taken against an older version indexes rows that no longer exist, so
	// vertex warm starts key on (version, cut count) and fall back cold on a
	// mismatch.
	version int
	// added / deduped / evicted count the fate of offered cuts over the run.
	added, deduped, evicted int
}

// add offers a cut to the warehouse. A duplicate (slope and intercept both
// within num.CutDedupTol, relative) refreshes the stored cut's lastUse and
// is dropped; otherwise the cut is appended and, if the store overflows its
// capacity, the least-recently-used cut is evicted. Reports whether the cut
// was appended.
func (w *cutWarehouse) add(a, r float64, clock int) bool {
	for i := range w.cuts {
		c := &w.cuts[i]
		if math.Abs(c.a-a) <= num.CutDedupTol*(1+math.Abs(c.a)) &&
			math.Abs(c.r-r) <= num.CutDedupTol*(1+math.Abs(c.r)) {
			if clock > c.lastUse {
				c.lastUse = clock
			}
			w.deduped++
			return false
		}
	}
	w.cuts = append(w.cuts, storedCut{a: a, r: r, lastUse: clock})
	w.added++
	if w.cap > 0 && len(w.cuts) > w.cap {
		w.evictLRU()
	}
	return true
}

// touch refreshes cut i's lastUse; the solver calls it for every cut whose
// row was binding (nonzero dual) in an optimal vertex LP, so cuts that keep
// shaping the value function survive the aging.
func (w *cutWarehouse) touch(i, clock int) {
	if i < 0 || i >= len(w.cuts) {
		return
	}
	if clock > w.cuts[i].lastUse {
		w.cuts[i].lastUse = clock
	}
}

// evictLRU removes least-recently-used cuts until the store fits its
// capacity, breaking lastUse ties toward the lowest index (the oldest
// append) so eviction is deterministic. Each call bumps version once.
func (w *cutWarehouse) evictLRU() {
	if w.cap <= 0 || len(w.cuts) <= w.cap {
		return
	}
	for len(w.cuts) > w.cap {
		oldest := 0
		for i := 1; i < len(w.cuts); i++ {
			if w.cuts[i].lastUse < w.cuts[oldest].lastUse {
				oldest = i
			}
		}
		w.cuts = append(w.cuts[:oldest], w.cuts[oldest+1:]...)
		w.evicted++
	}
	w.version++
}
