package benders

import "testing"

func TestWarehouseDedup(t *testing.T) {
	w := cutWarehouse{cap: 8}
	if !w.add(1.0, 2.0, 1) {
		t.Fatal("first cut must be stored")
	}
	// A near-duplicate within CutDedupTol refreshes the stored cut instead
	// of growing the store.
	if w.add(1.0+1e-12, 2.0-1e-12, 2) {
		t.Fatal("near-duplicate cut must be deduplicated")
	}
	if len(w.cuts) != 1 || w.added != 1 || w.deduped != 1 {
		t.Fatalf("store after dedup: len=%d added=%d deduped=%d", len(w.cuts), w.added, w.deduped)
	}
	if w.cuts[0].lastUse != 2 {
		t.Fatalf("dedup hit must refresh lastUse, got %d", w.cuts[0].lastUse)
	}
	// Same slope, clearly different intercept: a genuinely new cut.
	if !w.add(1.0, 2.5, 3) {
		t.Fatal("distinct cut must be stored")
	}
	if len(w.cuts) != 2 || w.version != 0 {
		t.Fatalf("store after distinct add: len=%d version=%d", len(w.cuts), w.version)
	}
}

func TestWarehouseLRUEviction(t *testing.T) {
	w := cutWarehouse{cap: 3}
	w.add(1, 10, 1)
	w.add(2, 20, 2)
	w.add(3, 30, 3)
	// Refresh cut 0, making cut 1 the least recently used.
	w.touch(0, 4)
	w.add(4, 40, 5)
	if len(w.cuts) != 3 {
		t.Fatalf("capacity overflow: %d cuts, cap 3", len(w.cuts))
	}
	if w.evicted != 1 || w.version != 1 {
		t.Fatalf("eviction accounting: evicted=%d version=%d", w.evicted, w.version)
	}
	slopes := []float64{w.cuts[0].a, w.cuts[1].a, w.cuts[2].a}
	want := []float64{1, 3, 4}
	for i := range want {
		if slopes[i] != want[i] {
			t.Fatalf("surviving slopes %v, want %v (LRU cut 2 must go)", slopes, want)
		}
	}
}

func TestWarehouseEvictionTieBreak(t *testing.T) {
	// Equal lastUse everywhere: the eviction must deterministically take
	// the lowest index (the oldest append).
	w := cutWarehouse{cap: 2}
	w.add(1, 10, 7)
	w.add(2, 20, 7)
	w.add(3, 30, 7)
	if len(w.cuts) != 2 || w.cuts[0].a != 2 || w.cuts[1].a != 3 {
		t.Fatalf("tie-break eviction kept slopes %v", w.cuts)
	}
}

func TestWarehouseCapInvariant(t *testing.T) {
	w := cutWarehouse{cap: 4}
	for i := 0; i < 40; i++ {
		w.add(float64(i), float64(2*i), i)
		if len(w.cuts) > w.cap {
			t.Fatalf("after add %d: %d cuts exceed cap %d", i, len(w.cuts), w.cap)
		}
	}
	if w.added != 40 || w.evicted != 36 {
		t.Fatalf("added=%d evicted=%d", w.added, w.evicted)
	}
	// Unbounded store (cap ≤ 0) never evicts.
	u := cutWarehouse{}
	for i := 0; i < 40; i++ {
		u.add(float64(i), 0, i)
	}
	if len(u.cuts) != 40 || u.evicted != 0 || u.version != 0 {
		t.Fatalf("unbounded store: len=%d evicted=%d version=%d", len(u.cuts), u.evicted, u.version)
	}
}

func TestWarehouseTouchOutOfRange(t *testing.T) {
	w := cutWarehouse{cap: 2}
	w.add(1, 1, 1)
	w.touch(-1, 9)
	w.touch(5, 9)
	if w.cuts[0].lastUse != 1 {
		t.Fatalf("out-of-range touch mutated the store: %+v", w.cuts)
	}
}
