package benders

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"

	"rentplan/internal/lotsize"
	"rentplan/internal/lp"
	"rentplan/internal/num"
)

// defaultWarehouseCap is the per-vertex cut-store bound selected when
// NestedOptions.WarehouseCap is unset. It comfortably exceeds the sweep
// count of every converging instance seen in tests, so eviction only kicks
// in on pathologically slow runs where bounding the vertex LP size matters.
const defaultWarehouseCap = 128

// NestedOptions tunes the multistage nested L-shaped solver.
type NestedOptions struct {
	// MaxIter bounds forward/backward sweeps; ≤0 selects 200.
	MaxIter int
	// Tol is the relative gap closing the root bound; ≤0 selects
	// num.DecompGapTol.
	Tol float64
	// Workers bounds the goroutines solving vertex LPs within one stage of
	// a forward or backward pass; ≤0 selects runtime.GOMAXPROCS(0), and 1
	// runs the passes inline with no goroutines. The result is
	// bit-identical for every worker count: stages are separated by
	// barriers and all cross-vertex state is combined in vertex order.
	Workers int
	// WarehouseCap bounds the cuts stored per vertex before LRU aging
	// evicts the least-recently-used one; ≤0 selects defaultWarehouseCap.
	WarehouseCap int
	// NoWarmStart disables the vertex basis reuse and the backward-pass
	// solution memo, re-solving every vertex LP cold — the behaviour of the
	// serial solver before the warehouse landed. Benchmarks use it as the
	// A/B baseline; the default (false) is strictly faster.
	NoWarmStart bool
}

func (o NestedOptions) withDefaults() NestedOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Tol <= 0 {
		o.Tol = num.DecompGapTol
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.WarehouseCap <= 0 {
		o.WarehouseCap = defaultWarehouseCap
	}
	return o
}

// NestedResult is the outcome of a nested L-shaped solve.
type NestedResult struct {
	// Bound is the proven lower bound (root master objective); Cost is the
	// expected cost of the implementable policy from the last forward pass
	// (an upper bound). At convergence they agree to within Tol.
	Bound, Cost float64
	// RootAlpha, RootBeta, RootChi are the first-stage decisions.
	RootAlpha, RootBeta, RootChi float64
	// Iterations counts forward/backward sweeps; Cuts counts the cuts the
	// vertex warehouses actually stored.
	Iterations, Cuts int
	Converged        bool
	// CutsDeduped and CutsEvicted count the cuts the warehouses dropped as
	// near-duplicates and aged out over capacity, respectively.
	CutsDeduped, CutsEvicted int
	// VertexSolves counts the vertex LPs actually solved; WarmSolves of
	// them reused a stored basis, and MemoHits counts vertex evaluations
	// served from the last-solve memo without touching the LP solver.
	VertexSolves, WarmSolves, MemoHits int
}

// nestedHookForward and nestedHookBackward, when non-nil, fire before each
// stage batch of the forward and backward passes with the 1-based sweep
// number and the stage depth. They exist solely so tests can cancel the
// context at a deterministic point mid-pass; production code leaves them
// nil.
var (
	nestedHookForward  func(iter, stage int)
	nestedHookBackward func(iter, stage int)
)

// SolveTreeLP solves the LP relaxation (χ ∈ [0,1]) of a stochastic
// lot-sizing scenario tree by the nested L-shaped method of Birge — the
// multistage decomposition the paper cites for SRRP ([28]). Each vertex
// keeps a small local LP over (α, β, χ, θ) where θ under-approximates the
// children's expected cost-to-go as a function of the outgoing inventory β;
// forward passes propagate trial inventories, backward passes return
// supporting cuts from the children's LP duals.
//
// Within each stage the vertex LPs are independent given the parent
// inventories, so both passes batch a stage's vertices across
// Options.Workers goroutines with a barrier between stages. Every vertex
// carries a cut warehouse (deduplicated, LRU-aged) and, unless NoWarmStart
// is set, a stored simplex basis: between visits only the balance RHS and
// the appended cut rows change, so re-solves warm-start through
// lp.SolveFromCtx with the basis extended over the new cut slacks.
//
// The result's Bound equals the LP relaxation optimum of the deterministic
// equivalent at convergence (verified against the extensive form in tests)
// and is a valid lower bound on the integer SRRP optimum.
func SolveTreeLP(tp *lotsize.TreeProblem, opts NestedOptions) (*NestedResult, error) {
	return SolveTreeLPCtx(context.Background(), tp, opts)
}

// SolveTreeLPCtx is SolveTreeLP under a context: cancellation is checked
// at every stage barrier and inside every vertex LP; a canceled run
// returns the context error. A background context is bit-identical to
// SolveTreeLP.
func SolveTreeLPCtx(ctx context.Context, tp *lotsize.TreeProblem, opts NestedOptions) (*NestedResult, error) {
	if tp == nil {
		return nil, errors.New("benders: nil tree problem")
	}
	if err := validateTree(tp); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	s := newNestedSolver(tp, opts)
	res := s.res
	for iter := 0; iter < opts.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("benders: canceled after %d sweeps: %w", res.Iterations, err)
		}
		res.Iterations++
		rootObj, err := s.forward(ctx)
		if err != nil {
			return nil, err
		}
		res.Bound = rootObj
		// Exact cost of the implementable forward policy (upper bound).
		total := 0.0
		for v := range s.localC {
			total += s.localC[v]
		}
		res.Cost = total
		if total-rootObj <= opts.Tol*(1+math.Abs(total)) {
			res.Converged = true
			s.collectStats()
			return res, nil
		}
		if err := s.backward(ctx); err != nil {
			return nil, err
		}
	}
	s.collectStats()
	return res, nil
}

// vertexState is the persistent per-vertex state carried across sweeps:
// the cut warehouse, the last optimal basis (for warm starts), and a memo
// of the last solve (so the backward pass re-reads a child's forward
// solution instead of re-solving when nothing about its LP changed). Each
// vertex is owned by exactly one goroutine per stage batch — its own task
// in the forward pass, its parent's task in the backward pass — so no
// field needs locking.
type vertexState struct {
	wh cutWarehouse
	// solves is the per-vertex solve clock driving the warehouse LRU;
	// warm and memoHits feed the run statistics.
	solves, warm, memoHits int

	// basis is the snapshot of the last optimal solve, valid for a re-solve
	// while the warehouse still holds the same cut rows: basisCuts rows at
	// warehouse version basisVersion. Newer appended cuts are bridged by
	// Basis.ExtendAppendedRows; an eviction (version bump) forces a cold
	// solve.
	basis                   *lp.Basis
	basisCuts, basisVersion int

	// memo caches the full outcome of the last solve, keyed by the exact
	// balance RHS and the warehouse state it was solved under.
	memoValid              bool
	memoB                  float64
	memoCuts, memoVersion  int
	memoAlpha, memoBeta    float64
	memoChi, memoTheta     float64
	memoObj, memoLambda    float64
}

type nestedSolver struct {
	tp   *lotsize.TreeProblem
	opts NestedOptions
	res  *NestedResult

	children [][]int
	// stages[d] lists the vertices at depth d in ascending index order;
	// parents[d] is its restriction to vertices with children.
	stages, parents [][]int
	maxRemain       []float64
	st              []vertexState

	inB, outB, localC []float64
	errs              []error
}

func newNestedSolver(tp *lotsize.TreeProblem, opts NestedOptions) *nestedSolver {
	n := tp.N()
	s := &nestedSolver{
		tp:        tp,
		opts:      opts,
		res:       &NestedResult{},
		children:  make([][]int, n),
		maxRemain: make([]float64, n),
		st:        make([]vertexState, n),
		inB:       make([]float64, n),
		outB:      make([]float64, n),
		localC:    make([]float64, n),
		errs:      make([]error, n),
	}
	depth := make([]int, n)
	maxDepth := 0
	for v := 1; v < n; v++ {
		s.children[tp.Parent[v]] = append(s.children[tp.Parent[v]], v)
		depth[v] = depth[tp.Parent[v]] + 1
		if depth[v] > maxDepth {
			maxDepth = depth[v]
		}
	}
	s.stages = make([][]int, maxDepth+1)
	s.parents = make([][]int, maxDepth+1)
	for v := 0; v < n; v++ {
		s.stages[depth[v]] = append(s.stages[depth[v]], v)
		if len(s.children[v]) > 0 {
			s.parents[depth[v]] = append(s.parents[depth[v]], v)
		}
		s.st[v].wh.cap = opts.WarehouseCap
	}
	// Remaining path demand bounds α and β (cf. the tightened MILP).
	for v := n - 1; v >= 0; v-- {
		m := 0.0
		for _, c := range s.children[v] {
			if s.maxRemain[c] > m {
				m = s.maxRemain[c]
			}
		}
		s.maxRemain[v] = tp.Demand[v] + m
	}
	return s
}

// forward runs one forward pass stage by stage, propagating trial
// inventories root-down, and returns the root master objective.
func (s *nestedSolver) forward(ctx context.Context) (float64, error) {
	rootObj := 0.0
	for d, verts := range s.stages {
		if h := nestedHookForward; h != nil {
			h(s.res.Iterations, d)
		}
		if err := ctx.Err(); err != nil {
			return 0, fmt.Errorf("benders: canceled in forward stage %d of sweep %d: %w", d, s.res.Iterations, err)
		}
		parallelFor(s.opts.Workers, len(verts), func(i int) {
			v := verts[i]
			b := s.tp.InitialInventory
			if v != 0 {
				b = s.outB[s.tp.Parent[v]]
			}
			s.inB[v] = b
			alpha, beta, chi, theta, obj, _, err := s.solveVertex(ctx, v, b)
			if err != nil {
				s.errs[v] = err
				return
			}
			s.outB[v] = beta
			s.localC[v] = obj - theta
			if v == 0 {
				// Depth 0 holds only the root, so parallelFor runs this
				// batch inline and the writes need no synchronisation.
				rootObj = obj
				s.res.RootAlpha, s.res.RootBeta, s.res.RootChi = alpha, beta, chi
			}
		})
		for _, v := range verts {
			if s.errs[v] != nil {
				return 0, s.errs[v]
			}
		}
	}
	return rootObj, nil
}

// backward runs one backward pass from the deepest non-leaf stage up,
// adding one aggregated cut per non-leaf vertex at its trial β. Each
// parent's task solves its own children sequentially in index order, so
// the cut coefficients accumulate in the same order for every worker
// count.
func (s *nestedSolver) backward(ctx context.Context) error {
	for d := len(s.parents) - 1; d >= 0; d-- {
		verts := s.parents[d]
		if len(verts) == 0 {
			continue
		}
		if h := nestedHookBackward; h != nil {
			h(s.res.Iterations, d)
		}
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("benders: canceled in backward stage %d of sweep %d: %w", d, s.res.Iterations, err)
		}
		parallelFor(s.opts.Workers, len(verts), func(i int) {
			v := verts[i]
			b := s.outB[v]
			var slope, value float64
			for _, c := range s.children[v] {
				// Q_c(b') ≥ Q_c(b) − λ_c (b' − b): the rhs dual is dObj/dD
				// and b enters as −D.
				_, _, _, _, objC, lamC, err := s.solveVertex(ctx, c, b)
				if err != nil {
					s.errs[v] = err
					return
				}
				value += objC
				slope += -lamC
			}
			st := &s.st[v]
			// θ ≥ slope·β + (value − slope·b).
			st.wh.add(slope, value-slope*b, st.solves)
		})
		for _, v := range verts {
			if s.errs[v] != nil {
				return s.errs[v]
			}
		}
	}
	return nil
}

// solveVertex evaluates the local LP at vertex v for incoming inventory b.
// Variables: [α, β, χ] plus θ on non-leaves. Returns the solution pieces,
// the objective, and the dual of the balance row (dObj/dD, so dObj/db is
// its negation). Unless NoWarmStart is set it first consults the memo of
// the last solve — a hit requires the identical RHS and an unchanged cut
// set, under which a re-solve would reproduce the cached outcome — and
// otherwise warm-starts from the stored basis when the warehouse still
// contains every row the snapshot covered.
func (s *nestedSolver) solveVertex(ctx context.Context, v int, b float64) (alpha, beta, chi, theta, obj, lambda float64, err error) {
	st := &s.st[v]
	nv := 3
	if len(s.children[v]) > 0 {
		nv = 4
	}
	ncuts := 0
	if nv == 4 {
		ncuts = len(st.wh.cuts)
	}
	if !s.opts.NoWarmStart && st.memoValid &&
		st.memoCuts == ncuts && st.memoVersion == st.wh.version &&
		st.memoB == b { //lint:ignore rentlint/floatcmp memo key: reuse is sound only for a bit-identical rhs, where a re-solve would repeat the cached run exactly
		st.memoHits++
		return st.memoAlpha, st.memoBeta, st.memoChi, st.memoTheta, st.memoObj, st.memoLambda, nil
	}
	prob := &lp.Problem{
		C:     make([]float64, nv),
		Lower: make([]float64, nv),
		Upper: make([]float64, nv),
		SA:    make([]lp.SparseRow, 0, 3+ncuts),
	}
	pv := s.tp.Prob[v]
	prob.C[0] = pv * s.tp.Unit[v]
	prob.C[1] = pv * s.tp.Hold[v]
	prob.C[2] = pv * s.tp.Setup[v]
	prob.Upper[0] = s.maxRemain[v] + 1
	prob.Upper[1] = math.Inf(1) // large ε can push β past the demand bound
	prob.Upper[2] = 1
	if nv == 4 {
		prob.C[3] = 1
		// All costs are nonnegative, so 0 is a valid floor; the slack
		// absorbs LP-level rounding of near-zero cost-to-go values.
		prob.Lower[3] = -num.ThetaFloorTol
		prob.Upper[3] = math.Inf(1)
	}
	// Balance: α − β = D_v − b.
	prob.AddSparseRow([]int{0, 1}, []float64{1, -1}, lp.EQ, s.tp.Demand[v]-b)
	// Forcing: α − Bα·χ ≤ 0 with the tight per-vertex bound.
	prob.AddSparseRow([]int{0, 2}, []float64{1, -s.maxRemain[v]}, lp.LE, 0)
	// Valid inequality α − β ≤ D·χ (production serves the current
	// demand or enters stock), tightening the relaxation.
	prob.AddSparseRow([]int{0, 1, 2}, []float64{1, -1, -s.tp.Demand[v]}, lp.LE, 0)
	// Cuts: θ − a·β ≥ r, in warehouse order.
	for i := 0; i < ncuts; i++ {
		ct := &st.wh.cuts[i]
		prob.AddSparseRow([]int{1, 3}, []float64{-ct.a, 1}, lp.GE, ct.r)
	}
	st.solves++
	var sol *lp.Solution
	warm := false
	if !s.opts.NoWarmStart && st.basis != nil &&
		st.basisVersion == st.wh.version && ncuts >= st.basisCuts {
		basis := st.basis
		if ncuts > st.basisCuts {
			basis = basis.ExtendAppendedRows(nv, ncuts-st.basisCuts)
		}
		sol, err = lp.SolveFromCtx(ctx, prob, basis, lp.Options{})
		warm = err == nil && sol.WarmStart != lp.WarmNone && sol.WarmStart != lp.WarmFallback
	} else {
		sol, err = lp.SolveCtx(ctx, prob, lp.Options{})
	}
	if err != nil {
		return 0, 0, 0, 0, 0, 0, err
	}
	if sol.Status != lp.StatusOptimal {
		return 0, 0, 0, 0, 0, 0, fmt.Errorf("benders: vertex %d LP %v (b=%g)", v, sol.Status, b)
	}
	if warm {
		st.warm++
	}
	// Cuts binding at the optimum keep shaping the value function: refresh
	// their LRU stamp so aging evicts only the inactive ones.
	for i := 0; i < ncuts; i++ {
		if !num.Zero(sol.Duals[3+i], num.DriftTol) {
			st.wh.touch(i, st.solves)
		}
	}
	alpha, beta, chi = sol.X[0], sol.X[1], sol.X[2]
	if nv == 4 {
		theta = sol.X[3]
	}
	obj, lambda = sol.Obj, sol.Duals[0]
	if !s.opts.NoWarmStart {
		st.basis = sol.Basis
		st.basisCuts = ncuts
		st.basisVersion = st.wh.version
		st.memoValid = true
		st.memoB = b
		st.memoCuts = ncuts
		st.memoVersion = st.wh.version
		st.memoAlpha, st.memoBeta = alpha, beta
		st.memoChi, st.memoTheta = chi, theta
		st.memoObj, st.memoLambda = obj, lambda
	}
	return alpha, beta, chi, theta, obj, lambda, nil
}

// collectStats folds the per-vertex counters into the result, summing in
// vertex order.
func (s *nestedSolver) collectStats() {
	r := s.res
	r.Cuts, r.CutsDeduped, r.CutsEvicted = 0, 0, 0
	r.VertexSolves, r.WarmSolves, r.MemoHits = 0, 0, 0
	for v := range s.st {
		st := &s.st[v]
		r.Cuts += st.wh.added
		r.CutsDeduped += st.wh.deduped
		r.CutsEvicted += st.wh.evicted
		r.VertexSolves += st.solves
		r.WarmSolves += st.warm
		r.MemoHits += st.memoHits
	}
}

func validateTree(tp *lotsize.TreeProblem) error {
	n := tp.N()
	if n == 0 {
		return errors.New("benders: empty tree")
	}
	if len(tp.Prob) != n || len(tp.Setup) != n || len(tp.Unit) != n ||
		len(tp.Hold) != n || len(tp.Demand) != n {
		return errors.New("benders: tree slice mismatch")
	}
	if tp.Parent[0] != -1 {
		return errors.New("benders: vertex 0 must be the root")
	}
	for v := 1; v < n; v++ {
		if tp.Parent[v] < 0 || tp.Parent[v] >= v {
			return fmt.Errorf("benders: vertex %d parent %d not topological", v, tp.Parent[v])
		}
	}
	for v := 0; v < n; v++ {
		// !(p > 0) also rejects NaN; the upper bound rejects +Inf.
		if !(tp.Prob[v] > 0) || tp.Prob[v] > 1+num.ProbMassTol {
			return fmt.Errorf("benders: vertex %d probability %g outside (0, 1]", v, tp.Prob[v])
		}
		if badCoefficient(tp.Setup[v]) {
			return fmt.Errorf("benders: vertex %d setup cost %g not finite and nonnegative", v, tp.Setup[v])
		}
		if badCoefficient(tp.Unit[v]) {
			return fmt.Errorf("benders: vertex %d unit cost %g not finite and nonnegative", v, tp.Unit[v])
		}
		if badCoefficient(tp.Hold[v]) {
			return fmt.Errorf("benders: vertex %d holding cost %g not finite and nonnegative", v, tp.Hold[v])
		}
		if badCoefficient(tp.Demand[v]) {
			return fmt.Errorf("benders: vertex %d demand %g not finite and nonnegative", v, tp.Demand[v])
		}
	}
	if badCoefficient(tp.InitialInventory) {
		return errors.New("benders: initial inventory must be finite and nonnegative")
	}
	return nil
}

// badCoefficient reports a value unusable as a cost, demand, or inventory
// datum: NaN, ±Inf, or negative. Such values would silently corrupt the
// vertex LPs (NaN objective coefficients make every comparison false, an
// infinite demand breaks the maxRemain bounds), so validateTree rejects
// them up front, mirroring lotsize's validate.
func badCoefficient(x float64) bool {
	return math.IsNaN(x) || math.IsInf(x, 0) || x < 0
}
