package benders

import (
	"context"
	"errors"
	"fmt"
	"math"

	"rentplan/internal/lotsize"
	"rentplan/internal/lp"
)

// NestedOptions tunes the multistage nested L-shaped solver.
type NestedOptions struct {
	// MaxIter bounds forward/backward sweeps; ≤0 selects 200.
	MaxIter int
	// Tol is the relative gap closing the root bound; ≤0 selects 1e-7.
	Tol float64
}

func (o NestedOptions) withDefaults() NestedOptions {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	return o
}

// NestedResult is the outcome of a nested L-shaped solve.
type NestedResult struct {
	// Bound is the proven lower bound (root master objective); Cost is the
	// expected cost of the implementable policy from the last forward pass
	// (an upper bound). At convergence they agree to within Tol.
	Bound, Cost float64
	// RootAlpha, RootBeta, RootChi are the first-stage decisions.
	RootAlpha, RootBeta, RootChi float64
	Iterations, Cuts             int
	Converged                    bool
}

// SolveTreeLP solves the LP relaxation (χ ∈ [0,1]) of a stochastic
// lot-sizing scenario tree by the nested L-shaped method of Birge — the
// multistage decomposition the paper cites for SRRP ([28]). Each vertex
// keeps a small local LP over (α, β, χ, θ) where θ under-approximates the
// children's expected cost-to-go as a function of the outgoing inventory β;
// forward passes propagate trial inventories, backward passes return
// supporting cuts from the children's LP duals.
//
// The result's Bound equals the LP relaxation optimum of the deterministic
// equivalent at convergence (verified against the extensive form in tests)
// and is a valid lower bound on the integer SRRP optimum.
func SolveTreeLP(tp *lotsize.TreeProblem, opts NestedOptions) (*NestedResult, error) {
	return SolveTreeLPCtx(context.Background(), tp, opts)
}

// SolveTreeLPCtx is SolveTreeLP under a context: cancellation is checked
// between forward/backward sweeps and inside every vertex LP; a canceled
// run returns the context error. A background context is bit-identical to
// SolveTreeLP.
func SolveTreeLPCtx(ctx context.Context, tp *lotsize.TreeProblem, opts NestedOptions) (*NestedResult, error) {
	if tp == nil {
		return nil, errors.New("benders: nil tree problem")
	}
	if err := validateTree(tp); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	n := tp.N()
	children := make([][]int, n)
	for v := 1; v < n; v++ {
		children[tp.Parent[v]] = append(children[tp.Parent[v]], v)
	}
	// Remaining path demand bounds α and β (cf. the tightened MILP).
	maxRemain := make([]float64, n)
	for v := n - 1; v >= 0; v-- {
		m := 0.0
		for _, c := range children[v] {
			if maxRemain[c] > m {
				m = maxRemain[c]
			}
		}
		maxRemain[v] = tp.Demand[v] + m
	}

	// cuts[v] approximates G_v(β) = Σ_c Q_c(β): each cut is θ ≥ a·β + r.
	type cut struct{ a, r float64 }
	cuts := make([][]cut, n)
	thetaLB := -1e-6 // all costs are nonnegative, so 0 is a valid floor
	hasChildren := func(v int) bool { return len(children[v]) > 0 }

	// solveVertex builds and solves the local LP at v for incoming
	// inventory b. Variables: [α, β, χ, θ]. Returns the solution, the
	// objective, and the dual of the balance row (dObj/dD, so dObj/db is
	// its negation).
	solveVertex := func(v int, b float64) (alpha, beta, chi, theta, obj, lambda float64, err error) {
		nv := 3
		if hasChildren(v) {
			nv = 4
		}
		prob := &lp.Problem{
			C:     make([]float64, nv),
			Lower: make([]float64, nv),
			Upper: make([]float64, nv),
			SA:    []lp.SparseRow{},
		}
		pv := tp.Prob[v]
		prob.C[0] = pv * tp.Unit[v]
		prob.C[1] = pv * tp.Hold[v]
		prob.C[2] = pv * tp.Setup[v]
		prob.Upper[0] = maxRemain[v] + 1
		prob.Upper[1] = math.Inf(1) // large ε can push β past the demand bound
		prob.Upper[2] = 1
		if nv == 4 {
			prob.C[3] = 1
			prob.Lower[3] = thetaLB
			prob.Upper[3] = math.Inf(1)
		}
		// Balance: α − β = D_v − b.
		prob.AddSparseRow([]int{0, 1}, []float64{1, -1}, lp.EQ, tp.Demand[v]-b)
		// Forcing: α − Bα·χ ≤ 0 with the tight per-vertex bound.
		prob.AddSparseRow([]int{0, 2}, []float64{1, -maxRemain[v]}, lp.LE, 0)
		// Valid inequality α − β ≤ D·χ (production serves the current
		// demand or enters stock), tightening the relaxation.
		prob.AddSparseRow([]int{0, 1, 2}, []float64{1, -1, -tp.Demand[v]}, lp.LE, 0)
		// Cuts: θ − a·β ≥ r.
		if nv == 4 {
			for _, ct := range cuts[v] {
				prob.AddSparseRow([]int{1, 3}, []float64{-ct.a, 1}, lp.GE, ct.r)
			}
		}
		sol, err := lp.SolveCtx(ctx, prob, lp.Options{})
		if err != nil {
			return 0, 0, 0, 0, 0, 0, err
		}
		if sol.Status != lp.StatusOptimal {
			return 0, 0, 0, 0, 0, 0, fmt.Errorf("benders: vertex %d LP %v (b=%g)", v, sol.Status, b)
		}
		alpha, beta, chi = sol.X[0], sol.X[1], sol.X[2]
		if nv == 4 {
			theta = sol.X[3]
		}
		return alpha, beta, chi, theta, sol.Obj, sol.Duals[0], nil
	}

	res := &NestedResult{}
	inB := make([]float64, n)    // incoming inventory per vertex (forward pass)
	outB := make([]float64, n)   // chosen β per vertex
	localC := make([]float64, n) // local (probability-weighted) stage cost
	for iter := 0; iter < opts.MaxIter; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("benders: canceled after %d sweeps: %w", res.Iterations, err)
		}
		res.Iterations++
		// Forward pass in topological order.
		var rootObj float64
		for v := 0; v < n; v++ {
			if v == 0 {
				inB[0] = tp.InitialInventory
			} else {
				inB[v] = outB[tp.Parent[v]]
			}
			alpha, beta, chi, theta, obj, _, err := solveVertex(v, inB[v])
			if err != nil {
				return nil, err
			}
			outB[v] = beta
			localC[v] = obj - theta
			if v == 0 {
				rootObj = obj
				res.RootAlpha, res.RootBeta, res.RootChi = alpha, beta, chi
			}
		}
		res.Bound = rootObj
		// Exact cost of the implementable forward policy (upper bound).
		total := 0.0
		for v := 0; v < n; v++ {
			total += localC[v]
		}
		res.Cost = total
		if total-rootObj <= opts.Tol*(1+math.Abs(total)) {
			res.Converged = true
			return res, nil
		}
		// Backward pass: leaves upward, adding one aggregated cut per
		// non-leaf vertex at its trial β.
		for v := n - 1; v >= 0; v-- {
			if !hasChildren(v) {
				continue
			}
			b := outB[v]
			var slope, value float64
			for _, c := range children[v] {
				_, _, _, _, objC, lamC, err := solveVertex(c, b)
				if err != nil {
					return nil, err
				}
				// Q_c(b') ≥ Q_c(b) − λ_c (b' − b): rhs dual is dObj/dD and
				// b enters as −D.
				value += objC
				slope += -lamC
			}
			// θ ≥ slope·β + (value − slope·b).
			cuts[v] = append(cuts[v], cut{a: slope, r: value - slope*b})
			res.Cuts++
		}
	}
	return res, nil
}

func validateTree(tp *lotsize.TreeProblem) error {
	n := tp.N()
	if n == 0 {
		return errors.New("benders: empty tree")
	}
	if len(tp.Prob) != n || len(tp.Setup) != n || len(tp.Unit) != n ||
		len(tp.Hold) != n || len(tp.Demand) != n {
		return errors.New("benders: tree slice mismatch")
	}
	if tp.Parent[0] != -1 {
		return errors.New("benders: vertex 0 must be the root")
	}
	for v := 1; v < n; v++ {
		if tp.Parent[v] < 0 || tp.Parent[v] >= v {
			return fmt.Errorf("benders: vertex %d parent %d not topological", v, tp.Parent[v])
		}
	}
	if tp.InitialInventory < 0 {
		return errors.New("benders: negative initial inventory")
	}
	return nil
}
