package benders_test

import (
	"fmt"

	"rentplan/internal/benders"
	"rentplan/internal/lp"
)

// ExampleSolve runs the L-shaped method on a two-scenario newsvendor:
// order x now at cost 1; shortages cost 3 per unit later.
func ExampleSolve() {
	p := &benders.Problem{
		C:     []float64{1},
		Lower: []float64{0},
		Upper: []float64{100},
	}
	for _, d := range []float64{4, 10} {
		p.Scenarios = append(p.Scenarios, benders.Scenario{
			Prob: 0.5,
			Q:    []float64{3, 0},      // shortage penalty, free leftover
			W:    [][]float64{{1, -1}}, // z − w = d − x
			Rel:  []lp.Rel{lp.EQ},
			H:    []float64{d},
			T:    [][]float64{{1}},
		})
	}
	res, err := benders.Solve(p, benders.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("order %.0f units, total cost %.0f\n", res.X[0], res.Obj)
	// Output: order 10 units, total cost 10
}
