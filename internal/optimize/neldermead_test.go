package optimize

import (
	"math"
	"testing"
)

func TestQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1)
	}
	res, err := Minimize(f, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-4 || math.Abs(res.X[1]+1) > 1e-4 {
		t.Fatalf("x = %v", res.X)
	}
	if res.F > 1e-7 {
		t.Fatalf("f = %v", res.F)
	}
}

func TestRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res, err := Minimize(f, []float64{-1.2, 1}, Options{MaxEvals: 20000, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Fatalf("x = %v f = %v", res.X, res.F)
	}
}

func TestInfeasibleRegions(t *testing.T) {
	// f is +Inf outside the unit disc; minimum at (0.5, 0).
	f := func(x []float64) float64 {
		if x[0]*x[0]+x[1]*x[1] > 1 {
			return math.Inf(1)
		}
		return (x[0] - 0.5) * (x[0] - 0.5)
	}
	res, err := Minimize(f, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-0.5) > 1e-3 {
		t.Fatalf("x = %v", res.X)
	}
}

func TestNaNTreatedAsInf(t *testing.T) {
	f := func(x []float64) float64 {
		if x[0] < 0 {
			return math.NaN()
		}
		return x[0] * x[0]
	}
	res, err := Minimize(f, []float64{2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]) > 1e-3 {
		t.Fatalf("x = %v", res.X)
	}
}

func TestEmptyStart(t *testing.T) {
	if _, err := Minimize(func(x []float64) float64 { return 0 }, nil, Options{}); err == nil {
		t.Fatal("want error")
	}
}

func TestMaxEvalsRespected(t *testing.T) {
	count := 0
	f := func(x []float64) float64 {
		count++
		return x[0] * x[0]
	}
	_, err := Minimize(f, []float64{100}, Options{MaxEvals: 50, Restarts: 0})
	if err != nil {
		t.Fatal(err)
	}
	if count > 60 { // small slack for the simplex completion step
		t.Fatalf("evals = %d", count)
	}
}
