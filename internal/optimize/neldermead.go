// Package optimize provides a derivative-free Nelder–Mead simplex minimiser
// used to fit ARMA/SARIMA models by conditional sum of squares.
package optimize

import (
	"errors"
	"math"
	"sort"
)

// Options tunes the Nelder–Mead search. Zero value = defaults.
type Options struct {
	// MaxEvals bounds objective evaluations; ≤0 selects 200·dim².
	MaxEvals int
	// TolF stops when the simplex objective spread falls below it; ≤0
	// selects 1e-10.
	TolF float64
	// TolX stops when the simplex diameter falls below it; ≤0 selects 1e-8.
	TolX float64
	// Step is the initial simplex edge length; ≤0 selects 0.1 (or 0.00025
	// for coordinates that are exactly 0, mirroring common practice).
	Step float64
	// Restarts re-runs the search from the best point with a fresh simplex;
	// <0 selects 1.
	Restarts int
}

func (o Options) withDefaults(dim int) Options {
	if o.MaxEvals <= 0 {
		o.MaxEvals = 200 * dim * dim
		if o.MaxEvals < 2000 {
			o.MaxEvals = 2000
		}
	}
	if o.TolF <= 0 {
		o.TolF = 1e-10
	}
	if o.TolX <= 0 {
		o.TolX = 1e-8
	}
	if o.Step <= 0 {
		o.Step = 0.1
	}
	if o.Restarts < 0 {
		o.Restarts = 1
	}
	return o
}

// Result is the outcome of a minimisation.
type Result struct {
	X     []float64
	F     float64
	Evals int
}

// Minimize runs Nelder–Mead from x0 on f. f may return +Inf to signal an
// infeasible point (e.g. non-stationary ARMA coefficients).
func Minimize(f func([]float64) float64, x0 []float64, opts Options) (Result, error) {
	dim := len(x0)
	if dim == 0 {
		return Result{}, errors.New("optimize: empty start point")
	}
	opts = opts.withDefaults(dim)

	best := append([]float64(nil), x0...)
	bestF := f(best)
	evals := 1

	for r := 0; r <= opts.Restarts; r++ {
		res := minimizeOnce(f, best, opts, &evals)
		if res.F < bestF {
			bestF = res.F
			best = res.X
		}
		if evals >= opts.MaxEvals {
			break
		}
	}
	return Result{X: best, F: bestF, Evals: evals}, nil
}

func minimizeOnce(f func([]float64) float64, x0 []float64, opts Options, evals *int) Result {
	dim := len(x0)
	const (
		alpha = 1.0 // reflection
		gamma = 2.0 // expansion
		rho   = 0.5 // contraction
		sigma = 0.5 // shrink
	)
	type vertex struct {
		x []float64
		f float64
	}
	eval := func(x []float64) float64 {
		*evals++
		v := f(x)
		if math.IsNaN(v) {
			return math.Inf(1)
		}
		return v
	}
	simplex := make([]vertex, dim+1)
	simplex[0] = vertex{x: append([]float64(nil), x0...)}
	simplex[0].f = eval(simplex[0].x)
	for i := 1; i <= dim; i++ {
		x := append([]float64(nil), x0...)
		if x[i-1] == 0 { //lint:ignore rentlint/floatcmp Nelder–Mead's standard zero-coordinate rule: relative steps are meaningless at exactly zero
			x[i-1] = 0.00025
		} else {
			x[i-1] += opts.Step * math.Max(1, math.Abs(x[i-1]))
		}
		simplex[i] = vertex{x: x, f: eval(x)}
	}

	centroid := make([]float64, dim)
	xr := make([]float64, dim)
	xe := make([]float64, dim)
	xc := make([]float64, dim)

	for *evals < opts.MaxEvals {
		sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
		// Convergence: objective spread and simplex diameter.
		fSpread := simplex[dim].f - simplex[0].f
		diam := 0.0
		for i := 1; i <= dim; i++ {
			for j := 0; j < dim; j++ {
				diam = math.Max(diam, math.Abs(simplex[i].x[j]-simplex[0].x[j]))
			}
		}
		if (fSpread < opts.TolF && !math.IsInf(simplex[dim].f, 1)) || diam < opts.TolX {
			break
		}
		// Centroid of all but the worst.
		for j := 0; j < dim; j++ {
			centroid[j] = 0
		}
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				centroid[j] += simplex[i].x[j]
			}
		}
		for j := 0; j < dim; j++ {
			centroid[j] /= float64(dim)
		}
		worst := simplex[dim]
		for j := 0; j < dim; j++ {
			xr[j] = centroid[j] + alpha*(centroid[j]-worst.x[j])
		}
		fr := eval(xr)
		switch {
		case fr < simplex[0].f:
			// Try expansion.
			for j := 0; j < dim; j++ {
				xe[j] = centroid[j] + gamma*(xr[j]-centroid[j])
			}
			fe := eval(xe)
			if fe < fr {
				copy(worst.x, xe)
				worst.f = fe
			} else {
				copy(worst.x, xr)
				worst.f = fr
			}
			simplex[dim] = worst
		case fr < simplex[dim-1].f:
			copy(worst.x, xr)
			worst.f = fr
			simplex[dim] = worst
		default:
			// Contraction (outside if fr better than worst, else inside).
			ref := worst.x
			if fr < worst.f {
				ref = xr
			}
			for j := 0; j < dim; j++ {
				xc[j] = centroid[j] + rho*(ref[j]-centroid[j])
			}
			fc := eval(xc)
			if fc < math.Min(fr, worst.f) {
				copy(worst.x, xc)
				worst.f = fc
				simplex[dim] = worst
			} else {
				// Shrink toward the best vertex.
				for i := 1; i <= dim; i++ {
					for j := 0; j < dim; j++ {
						simplex[i].x[j] = simplex[0].x[j] + sigma*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].f = eval(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(i, j int) bool { return simplex[i].f < simplex[j].f })
	return Result{X: append([]float64(nil), simplex[0].x...), F: simplex[0].f, Evals: *evals}
}
