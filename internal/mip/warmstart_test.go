package mip

import (
	"math"
	"math/rand"
	"testing"

	"rentplan/internal/lp"
)

// checkWarmAccounting asserts the Stats dispatch invariant: every solved
// node is counted in exactly one warm/cold class, and the iteration split
// covers all simplex pivots.
func checkWarmAccounting(t *testing.T, st Stats) {
	t.Helper()
	total := st.WarmHits + st.WarmMisses + st.WarmDuals + st.WarmFallbacks + st.ColdNodes
	if total != int64(st.Nodes) {
		t.Fatalf("warm accounting: hits %d + misses %d + duals %d + fallbacks %d + cold %d = %d, want Nodes = %d",
			st.WarmHits, st.WarmMisses, st.WarmDuals, st.WarmFallbacks, st.ColdNodes, total, st.Nodes)
	}
	if st.WarmIters+st.ColdIters != st.SimplexIters {
		t.Fatalf("iteration accounting: warm %d + cold %d != total %d",
			st.WarmIters, st.ColdIters, st.SimplexIters)
	}
}

// TestWarmVsColdAgreement runs the MILP corpus with warm starts on and off,
// across workers={1,4}, and requires the identical proven optimum.
func TestWarmVsColdAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	corpus := []*Problem{
		knapsackInstance(rng, 14),
		knapsackInstance(rng, 20),
		lotSizingInstance(rng, 5),
		lotSizingInstance(rng, 7),
	}
	for pi, p := range corpus {
		coldSol, err := SolveWithOptions(p, Options{Workers: 1, NoWarmStart: true})
		if err != nil {
			t.Fatalf("instance %d cold: %v", pi, err)
		}
		if coldSol.Status != StatusOptimal {
			t.Fatalf("instance %d cold status %v", pi, coldSol.Status)
		}
		if coldSol.Stats.WarmHits+coldSol.Stats.WarmMisses+coldSol.Stats.WarmDuals+coldSol.Stats.WarmFallbacks != 0 {
			t.Fatalf("instance %d: NoWarmStart run recorded warm dispatches: %+v", pi, coldSol.Stats)
		}
		checkWarmAccounting(t, coldSol.Stats)
		for _, workers := range []int{1, 4} {
			warmSol, err := SolveWithOptions(p, Options{Workers: workers})
			if err != nil {
				t.Fatalf("instance %d workers %d: %v", pi, workers, err)
			}
			if warmSol.Status != StatusOptimal {
				t.Fatalf("instance %d workers %d: status %v", pi, workers, warmSol.Status)
			}
			if math.Abs(warmSol.Obj-coldSol.Obj) > 1e-6 {
				t.Fatalf("instance %d workers %d: warm obj %.9f, cold obj %.9f",
					pi, workers, warmSol.Obj, coldSol.Obj)
			}
			checkWarmAccounting(t, warmSol.Stats)
			if warmSol.Stats.WarmHits+warmSol.Stats.WarmMisses+warmSol.Stats.WarmDuals == 0 && warmSol.Stats.Nodes > 1 {
				t.Fatalf("instance %d workers %d: warm start never engaged: %+v", pi, workers, warmSol.Stats)
			}
		}
	}
}

// TestWarmStartReducesIterations pins the point of the whole exercise: on a
// branching-heavy instance, warm-started search must spend measurably fewer
// simplex pivots per node than the cold search while proving the same
// optimum.
func TestWarmStartReducesIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := lotSizingInstance(rng, 8)
	warm, err := SolveWithOptions(p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := SolveWithOptions(p, Options{Workers: 1, NoWarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != StatusOptimal || cold.Status != StatusOptimal {
		t.Fatalf("status warm=%v cold=%v", warm.Status, cold.Status)
	}
	if math.Abs(warm.Obj-cold.Obj) > 1e-6 {
		t.Fatalf("objective mismatch: warm %.9f cold %.9f", warm.Obj, cold.Obj)
	}
	if warm.Stats.SimplexIters >= cold.Stats.SimplexIters {
		t.Fatalf("warm start saved nothing: warm %d iters, cold %d iters (warm stats %+v)",
			warm.Stats.SimplexIters, cold.Stats.SimplexIters, warm.Stats)
	}
	t.Logf("simplex iters: warm %d vs cold %d (%.0f%% saved); hits=%d misses=%d duals=%d fallbacks=%d",
		warm.Stats.SimplexIters, cold.Stats.SimplexIters,
		100*(1-float64(warm.Stats.SimplexIters)/float64(cold.Stats.SimplexIters)),
		warm.Stats.WarmHits, warm.Stats.WarmMisses, warm.Stats.WarmDuals, warm.Stats.WarmFallbacks)
}

// TestCustomLPTolReachesNodes pins the options-resolution bugfix: a caller-
// supplied LP tolerance must actually reach the node solves instead of being
// replaced by the default during per-node re-resolution. A deliberately
// absurd tolerance makes the node simplex accept its starting rest point as
// "optimal", which is observable as an objective of zero on a knapsack whose
// true optimum is strictly negative.
func TestCustomLPTolReachesNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := knapsackInstance(rng, 12)
	ref, err := SolveWithOptions(p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Status != StatusOptimal || ref.Obj >= 0 {
		t.Fatalf("reference solve: status %v obj %v, want negative optimum", ref.Status, ref.Obj)
	}
	for _, noWarm := range []bool{false, true} {
		loose, err := SolveWithOptions(p, Options{Workers: 1, NoWarmStart: noWarm, LP: lp.Options{Tol: 1e6}})
		if err != nil {
			t.Fatal(err)
		}
		if loose.Status != StatusOptimal || loose.Obj != 0 {
			t.Fatalf("noWarm=%v: loose-tolerance solve status %v obj %v, want the rest-point objective 0 — the custom Tol did not reach the node solves",
				noWarm, loose.Status, loose.Obj)
		}
	}
}

// TestNodeIterLimitNoFalseOptimality pins the StatusIterLimit bugfix: when a
// node LP dies at a tiny MaxIter its subtree's bound is unknown, so the
// search must report a limit with an honest (infinite) bound — never a
// "proven" infeasibility or optimality claim built on the lost subtree.
func TestNodeIterLimitNoFalseOptimality(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := knapsackInstance(rng, 12)
	sol, err := SolveWithOptions(p, Options{Workers: 1, LP: lp.Options{MaxIter: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// The root (and every node) LP hits the 1-pivot limit, so nothing was
	// proven: not optimality, not infeasibility.
	if sol.Status == StatusOptimal || sol.Status == StatusInfeasible {
		t.Fatalf("status %v claims a proof, but every node LP hit its iteration limit", sol.Status)
	}
	if !math.IsInf(sol.Bound, -1) {
		t.Fatalf("bound %v, want -Inf: the lost root subtree admits no finite bound claim", sol.Bound)
	}
	if sol.Stats.Nodes > 0 && sol.Stats.SimplexIters == 0 {
		t.Fatalf("MaxIter=1 did not reach the node solves: %+v", sol.Stats)
	}
}

// TestWorkersAgreementWarm extends the workers-agreement property to the
// warm-started search: the proven optimum must be identical for every worker
// count, with warm starts enabled (the default).
func TestWorkersAgreementWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	for trial := 0; trial < 6; trial++ {
		var p *Problem
		if trial%2 == 0 {
			p = knapsackInstance(rng, 12+trial)
		} else {
			p = lotSizingInstance(rng, 4+trial)
		}
		ref, err := SolveWithOptions(p, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		sol4, err := SolveWithOptions(p, Options{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if ref.Status != sol4.Status {
			t.Fatalf("trial %d: status %v (1 worker) vs %v (4 workers)", trial, ref.Status, sol4.Status)
		}
		if ref.Status == StatusOptimal && math.Abs(ref.Obj-sol4.Obj) > 1e-6 {
			t.Fatalf("trial %d: obj %.9f (1 worker) vs %.9f (4 workers)", trial, ref.Obj, sol4.Obj)
		}
		checkWarmAccounting(t, ref.Stats)
		checkWarmAccounting(t, sol4.Stats)
	}
}

// TestRootBasisReuse pins the cross-solve root warm start: a second solve of
// the same problem fed the first solve's RootBasis must prove the identical
// optimum with its root relaxation dispatched warm (no cold node anywhere in
// the tree), and a structurally mismatched basis must fall back to the
// bit-identical cold root rather than corrupt the solve.
func TestRootBasisReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	p := lotSizingInstance(rng, 7)
	first, err := SolveWithOptions(p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != StatusOptimal {
		t.Fatalf("first status %v", first.Status)
	}
	if first.RootBasis == nil {
		t.Fatal("first solve published no RootBasis")
	}
	if first.Stats.ColdNodes != 1 {
		t.Fatalf("first solve: %d cold nodes, want exactly the root", first.Stats.ColdNodes)
	}

	second, err := SolveWithOptions(p, Options{Workers: 1, RootBasis: first.RootBasis})
	if err != nil {
		t.Fatal(err)
	}
	if second.Status != StatusOptimal || second.Obj != first.Obj {
		t.Fatalf("warm-root solve: status %v obj %.12f, want optimal %.12f", second.Status, second.Obj, first.Obj)
	}
	if second.Stats.ColdNodes != 0 {
		t.Fatalf("warm-root solve still dispatched %d cold nodes: %+v", second.Stats.ColdNodes, second.Stats)
	}
	if second.RootBasis == nil {
		t.Fatal("warm-root solve republished no RootBasis")
	}
	checkWarmAccounting(t, second.Stats)

	// A basis from an unrelated, differently-sized problem must be rejected
	// by the warm dispatch and fall back to the cold path with the same
	// proven optimum.
	other, err := SolveWithOptions(knapsackInstance(rng, 9), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	stale, err := SolveWithOptions(p, Options{Workers: 1, RootBasis: other.RootBasis})
	if err != nil {
		t.Fatal(err)
	}
	if stale.Status != StatusOptimal || stale.Obj != first.Obj {
		t.Fatalf("stale-basis solve: status %v obj %.12f, want optimal %.12f", stale.Status, stale.Obj, first.Obj)
	}
	checkWarmAccounting(t, stale.Stats)

	// NoWarmStart must win over a supplied RootBasis.
	noWarm, err := SolveWithOptions(p, Options{Workers: 1, NoWarmStart: true, RootBasis: first.RootBasis})
	if err != nil {
		t.Fatal(err)
	}
	if noWarm.Stats.WarmHits+noWarm.Stats.WarmMisses+noWarm.Stats.WarmDuals+noWarm.Stats.WarmFallbacks != 0 {
		t.Fatalf("NoWarmStart run used the supplied root basis: %+v", noWarm.Stats)
	}
	if noWarm.Obj != first.Obj {
		t.Fatalf("NoWarmStart obj %.12f, want %.12f", noWarm.Obj, first.Obj)
	}
}
