package mip

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"rentplan/internal/lp"
)

// knapsackInstance builds a random 0/1 knapsack with n items.
func knapsackInstance(rng *rand.Rand, n int) *Problem {
	p := &Problem{
		LP: &lp.Problem{
			C:     make([]float64, n),
			A:     make([][]float64, 1),
			Rel:   []lp.Rel{lp.LE},
			B:     []float64{0},
			Upper: make([]float64, n),
		},
		Integer: intSlice(n, true),
	}
	row := make([]float64, n)
	s := 0.0
	for j := 0; j < n; j++ {
		p.LP.C[j] = -(1 + 10*rng.Float64())
		p.LP.Upper[j] = 1
		row[j] = 1 + 10*rng.Float64()
		s += row[j]
	}
	p.LP.A[0] = row
	p.LP.B[0] = s / 2
	return p
}

// lotSizingInstance builds a T-slot single-item fixed-charge lot-sizing MILP
// mirroring the DRRP structure: inventory flow β_{t-1} + α_t − β_t = d_t,
// setup forcing α_t ≤ M·χ_t with χ binary, and per-slot production, holding
// and setup costs.
func lotSizingInstance(rng *rand.Rand, T int) *Problem {
	nv := 3 * T // α_t, β_t, χ_t
	alpha := func(t int) int { return t }
	beta := func(t int) int { return T + t }
	chi := func(t int) int { return 2*T + t }
	p := &Problem{
		LP: &lp.Problem{
			C:     make([]float64, nv),
			Upper: make([]float64, nv),
		},
		Integer: make([]bool, nv),
	}
	dem := make([]float64, T)
	total := 0.0
	for t := 0; t < T; t++ {
		dem[t] = 1 + 4*rng.Float64()
		total += dem[t]
	}
	for t := 0; t < T; t++ {
		p.LP.C[alpha(t)] = 0.5 + rng.Float64()     // production cost
		p.LP.C[beta(t)] = 0.05 + 0.2*rng.Float64() // holding cost
		p.LP.C[chi(t)] = 1 + 5*rng.Float64()       // setup charge
		p.LP.Upper[alpha(t)] = total
		p.LP.Upper[beta(t)] = total
		p.LP.Upper[chi(t)] = 1
		p.Integer[chi(t)] = true

		// β_{t-1} + α_t − β_t = d_t
		row := make([]float64, nv)
		row[alpha(t)] = 1
		row[beta(t)] = -1
		if t > 0 {
			row[beta(t-1)] = 1
		}
		p.LP.A = append(p.LP.A, row)
		p.LP.Rel = append(p.LP.Rel, lp.EQ)
		p.LP.B = append(p.LP.B, dem[t])

		// α_t ≤ total·χ_t
		row2 := make([]float64, nv)
		row2[alpha(t)] = 1
		row2[chi(t)] = -total
		p.LP.A = append(p.LP.A, row2)
		p.LP.Rel = append(p.LP.Rel, lp.LE)
		p.LP.B = append(p.LP.B, 0)
	}
	return p
}

// TestWorkersAgreeOnOptimum asserts that every worker count proves the same
// optimal objective on the deterministic instances of this package's tests.
func TestWorkersAgreeOnOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	instances := []struct {
		name string
		p    *Problem
	}{
		{"knapsack4", &Problem{
			LP: &lp.Problem{
				C:     []float64{-10, -13, -7, -11},
				A:     [][]float64{{3, 4, 2, 3}},
				Rel:   []lp.Rel{lp.LE},
				B:     []float64{7},
				Upper: []float64{1, 1, 1, 1},
			},
			Integer: intSlice(4, true),
		}},
		{"mixed", &Problem{
			LP: &lp.Problem{
				C:     []float64{-1, -2},
				A:     [][]float64{{1, 1}, {1, 0}},
				Rel:   []lp.Rel{lp.LE, lp.GE},
				B:     []float64{7.5, 2.2},
				Upper: []float64{10, 10},
			},
			Integer: []bool{true, false},
		}},
		{"knapsack16", knapsackInstance(rng, 16)},
		{"lotsizing8", lotSizingInstance(rng, 8)},
	}
	for _, ins := range instances {
		var ref float64
		for _, w := range []int{1, 2, 8} {
			sol, err := SolveWithOptions(ins.p, Options{Workers: w})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", ins.name, w, err)
			}
			if sol.Status != StatusOptimal {
				t.Fatalf("%s workers=%d: status %v", ins.name, w, sol.Status)
			}
			if w == 1 {
				ref = sol.Obj
				continue
			}
			if math.Abs(sol.Obj-ref) > 1e-6 {
				t.Fatalf("%s workers=%d: obj %v, serial %v", ins.name, w, sol.Obj, ref)
			}
			if sol.Stats.Workers != w {
				t.Fatalf("%s: Stats.Workers=%d, want %d", ins.name, sol.Stats.Workers, w)
			}
		}
	}
}

// TestParallelLotSizingFuzz cross-checks serial and parallel solves on a
// stream of randomized lot-sizing instances.
func TestParallelLotSizingFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		p := lotSizingInstance(rng, 4+rng.Intn(7))
		serial, err := SolveWithOptions(p, Options{Workers: 1})
		if err != nil {
			t.Fatalf("trial %d serial: %v", trial, err)
		}
		if serial.Status != StatusOptimal {
			t.Fatalf("trial %d serial status %v", trial, serial.Status)
		}
		for _, w := range []int{2, 8} {
			par, err := SolveWithOptions(p, Options{Workers: w})
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, w, err)
			}
			if par.Status != StatusOptimal {
				t.Fatalf("trial %d workers=%d status %v", trial, w, par.Status)
			}
			if math.Abs(par.Obj-serial.Obj) > 1e-6 {
				t.Fatalf("trial %d workers=%d: obj %v, serial %v", trial, w, par.Obj, serial.Obj)
			}
		}
	}
}

// TestStatsAndProgress exercises the observability layer: the final Stats
// snapshot must be internally consistent and the Progress callback must fire
// with a monotone incumbent trajectory.
func TestStatsAndProgress(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	p := knapsackInstance(rng, 18)
	var calls atomic.Int64
	sol, err := SolveWithOptions(p, Options{
		Workers:       4,
		ProgressEvery: time.Nanosecond,
		Progress:      func(st Stats) { calls.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if calls.Load() == 0 {
		t.Fatal("Progress callback never fired")
	}
	st := sol.Stats
	if st.Nodes != sol.Nodes {
		t.Fatalf("Stats.Nodes=%d, Solution.Nodes=%d", st.Nodes, sol.Nodes)
	}
	if st.Workers != 4 || len(st.WorkerNodes) != 4 {
		t.Fatalf("worker accounting: %d workers, %v", st.Workers, st.WorkerNodes)
	}
	sum := 0
	for _, c := range st.WorkerNodes {
		sum += c
	}
	if sum != st.Nodes {
		t.Fatalf("per-worker nodes %v sum to %d, want %d", st.WorkerNodes, sum, st.Nodes)
	}
	if st.SimplexIters <= 0 {
		t.Fatal("no simplex iterations recorded")
	}
	if !st.HasIncumbent || math.Abs(st.Incumbent-sol.Obj) > 1e-12 {
		t.Fatalf("Stats incumbent %v (has=%v), want %v", st.Incumbent, st.HasIncumbent, sol.Obj)
	}
	if len(st.Incumbents) == 0 {
		t.Fatal("empty incumbent trajectory")
	}
	prev := math.Inf(1)
	for i, rec := range st.Incumbents {
		if rec.Obj >= prev {
			t.Fatalf("trajectory not improving at %d: %v then %v", i, prev, rec.Obj)
		}
		if rec.Elapsed < 0 {
			t.Fatalf("negative elapsed at %d", i)
		}
		prev = rec.Obj
	}
	if last := st.Incumbents[len(st.Incumbents)-1].Obj; math.Abs(last-sol.Obj) > 1e-12 {
		t.Fatalf("trajectory ends at %v, solution %v", last, sol.Obj)
	}
	if st.Gap > 1e-9 {
		t.Fatalf("final gap %v at optimality", st.Gap)
	}
}

// TestSerialDeterministic asserts the Workers=1 path is reproducible:
// identical node counts and identical solutions across repeated runs.
func TestSerialDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	p := knapsackInstance(rng, 14)
	first, err := SolveWithOptions(p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		sol, err := SolveWithOptions(p, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Nodes != first.Nodes || sol.Obj != first.Obj {
			t.Fatalf("run %d: nodes=%d obj=%v, first nodes=%d obj=%v",
				run, sol.Nodes, sol.Obj, first.Nodes, first.Obj)
		}
		for j := range sol.X {
			if sol.X[j] != first.X[j] {
				t.Fatalf("run %d: X[%d] differs", run, j)
			}
		}
	}
}
