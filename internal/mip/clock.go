package mip

import "time"

// Wall-clock access for this package is funnelled through the two helpers
// below. Wall time feeds only observability (Stats.Elapsed, the incumbent
// trajectory timestamps, Progress rate-limiting) and the TimeLimit stop
// check — never a branching, bounding or pruning decision — so the search
// itself stays deterministic for Workers = 1. The nondeterm analyzer flags
// any new direct time.Now/time.Since call elsewhere in the package, keeping
// that invariant honest.

// now returns the current wall-clock time.
//
//lint:ignore rentlint/nondeterm sole sanctioned clock read: wall time feeds only observability and TimeLimit, never search decisions
func now() time.Time { return time.Now() }

// since returns the wall-clock time elapsed since t.
func since(t time.Time) time.Duration { return now().Sub(t) }
