package mip

import (
	"math"
	"math/rand"
	"testing"

	"rentplan/internal/lp"
)

// Regression: an unbounded root relaxation used to fall through to the
// infeasible default because processNode returned silently on
// lp.StatusUnbounded. A mixed instance with a free improving direction must
// report StatusUnbounded.
func TestUnboundedRootRegression(t *testing.T) {
	// min -x0 - x1 with x0 integer unbounded above, x1 continuous in [0,1],
	// one non-binding row: the relaxation recedes along x0.
	p := &Problem{
		LP: &lp.Problem{
			C:     []float64{-1, -1},
			A:     [][]float64{{0, 1}},
			Rel:   []lp.Rel{lp.LE},
			B:     []float64{1},
			Upper: []float64{math.Inf(1), 1},
		},
		Integer: []bool{true, false},
	}
	for _, w := range []int{1, 4} {
		sol, err := SolveWithOptions(p, Options{Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != StatusUnbounded {
			t.Fatalf("workers=%d: status %v, want unbounded", w, sol.Status)
		}
	}
}

// Regression: Solution.Bound used to be stale (-Inf or the last popped
// bound) when a node limit fired, because the tightening update was dead
// code. At a forced MaxNodes stop the bound must be the true minimum over
// the open frontier: finite, no better than the LP relaxation, and
// consistent with the reported Gap.
func TestBoundAtMaxNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 30
	p := &Problem{
		LP: &lp.Problem{
			C:     make([]float64, n),
			A:     make([][]float64, 1),
			Rel:   []lp.Rel{lp.LE},
			B:     []float64{0},
			Upper: make([]float64, n),
		},
		Integer: intSlice(n, true),
	}
	row := make([]float64, n)
	s := 0.0
	for j := 0; j < n; j++ {
		p.LP.C[j] = -(1 + rng.Float64())
		p.LP.Upper[j] = 1
		row[j] = 1 + rng.Float64()
		s += row[j]
	}
	p.LP.A[0] = row
	p.LP.B[0] = s / 2

	rel, err := lp.Solve(p.LP)
	if err != nil || rel.Status != lp.StatusOptimal {
		t.Fatalf("root relaxation: %v %v", rel, err)
	}
	sol, err := SolveWithOptions(p, Options{MaxNodes: 5, Workers: 1, DisableHeuristic: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == StatusOptimal || sol.Status == StatusInfeasible {
		t.Fatalf("limit run reported %v", sol.Status)
	}
	if math.IsInf(sol.Bound, 0) || math.IsNaN(sol.Bound) {
		t.Fatalf("stale bound %v at node limit", sol.Bound)
	}
	// The bound can never be better (lower) than the root relaxation.
	if sol.Bound < rel.Obj-1e-7 {
		t.Fatalf("bound %v below root relaxation %v", sol.Bound, rel.Obj)
	}
	if sol.Status == StatusFeasible {
		if sol.Bound > sol.Obj+1e-9 {
			t.Fatalf("bound %v above incumbent %v", sol.Bound, sol.Obj)
		}
		want := math.Abs(sol.Obj-sol.Bound) / math.Max(1, math.Abs(sol.Obj))
		if math.Abs(sol.Gap-want) > 1e-12 {
			t.Fatalf("gap %v, want %v", sol.Gap, want)
		}
	}
}

// Regression: offerIncumbent used to keep the objective of the unsnapped LP
// point, so Solution.Obj could disagree with Solution.X. The invariant
// Obj = cᵀ·X must hold exactly on every returned solution.
func TestObjectiveMatchesX(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(8)
		m := 1 + rng.Intn(3)
		p := &Problem{
			LP: &lp.Problem{
				C:     make([]float64, n),
				A:     make([][]float64, m),
				Rel:   make([]lp.Rel, m),
				B:     make([]float64, m),
				Upper: make([]float64, n),
			},
			Integer: intSlice(n, true),
		}
		for j := 0; j < n; j++ {
			p.LP.C[j] = rng.NormFloat64() * 5
			p.LP.Upper[j] = float64(1 + rng.Intn(3))
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			s := 0.0
			for j := range row {
				row[j] = rng.Float64() * 2
				s += row[j]
			}
			p.LP.A[i], p.LP.Rel[i], p.LP.B[i] = row, lp.LE, s*(0.3+0.5*rng.Float64())
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if sol.X == nil {
			continue
		}
		obj := 0.0
		for j, c := range p.LP.C {
			obj += c * sol.X[j]
		}
		if math.Abs(obj-sol.Obj) > 1e-9 {
			t.Fatalf("trial %d: Obj %v but cᵀX %v (x=%v)", trial, sol.Obj, obj, sol.X)
		}
		for j, isInt := range p.Integer {
			if isInt && sol.X[j] != math.Round(sol.X[j]) {
				t.Fatalf("trial %d: X[%d]=%v not exactly integer", trial, j, sol.X[j])
			}
		}
	}
}

// Regression: the branch point used to mix fl = floor(x+tol) with
// fpart = x − floor(x), so a value just under an integer produced children
// x ≤ 3 / x ≥ 4 with a near-1 fractional part. fl and fpart must come from
// the same floor.
func TestBranchPoint(t *testing.T) {
	const tol = 1e-6
	cases := []struct {
		x         float64
		wantFl    float64
		wantFpart float64
	}{
		{2.5, 2, 0.5},
		{2.9999995, 3, 0},      // within tol below 3: snaps to 3, fpart clamped to 0
		{3.0000002, 3, 2.0e-7}, // just above 3
		{-1.5, -2, 0.5},        // negative values round toward -Inf
		{-1.0000005, -1, 0},    // within tol below -1: snaps up, fpart clamped to 0
		{0.25, 0, 0.25},
	}
	for _, c := range cases {
		fl, fpart := branchPoint(c.x, tol)
		if fl != c.wantFl {
			t.Errorf("branchPoint(%v): fl=%v, want %v", c.x, fl, c.wantFl)
		}
		if math.Abs(fpart-c.wantFpart) > 1e-9 {
			t.Errorf("branchPoint(%v): fpart=%v, want %v", c.x, fpart, c.wantFpart)
		}
		if fpart < 0 || fpart > 1 {
			t.Errorf("branchPoint(%v): fpart=%v outside [0,1]", c.x, fpart)
		}
		// Children x ≤ fl and x ≥ fl+1 must exclude the branch value only
		// when it is genuinely fractional.
		if frac := c.x - math.Floor(c.x); frac > tol && frac < 1-tol {
			if c.x <= fl || c.x >= fl+1 {
				t.Errorf("branchPoint(%v): value outside (fl, fl+1)=(%v, %v)", c.x, fl, fl+1)
			}
		}
	}
}
