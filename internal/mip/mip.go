// Package mip provides a branch-and-bound solver for mixed-integer linear
// programs, built on the bounded-variable simplex in internal/lp. It is the
// general-purpose optimisation engine behind the DRRP and SRRP planning
// models: best-bound search with depth-first plunging, most-fractional or
// pseudo-cost branching, and a rounding primal heuristic.
package mip

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"

	"rentplan/internal/lp"
)

// Status reports the outcome of a MILP solve.
type Status int8

const (
	// StatusOptimal means an optimal integer solution was proven.
	StatusOptimal Status = iota
	// StatusInfeasible means no integer-feasible point exists.
	StatusInfeasible
	// StatusUnbounded means the relaxation (and hence the MILP) is unbounded.
	StatusUnbounded
	// StatusFeasible means the search stopped at a limit with an incumbent
	// but without a proof of optimality.
	StatusFeasible
	// StatusLimit means the search stopped at a limit with no incumbent.
	StatusLimit
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusFeasible:
		return "feasible"
	case StatusLimit:
		return "limit"
	}
	return fmt.Sprintf("Status(%d)", int8(s))
}

// BranchRule selects how the fractional branching variable is chosen.
type BranchRule int8

const (
	// BranchMostFractional picks the integer variable whose relaxation value
	// is closest to .5.
	BranchMostFractional BranchRule = iota
	// BranchPseudoCost picks the variable with the best observed
	// degradation history, falling back to most-fractional early on.
	BranchPseudoCost
	// BranchFirstFractional picks the lowest-indexed fractional variable.
	BranchFirstFractional
)

// Problem is a mixed integer linear program: an LP plus integrality marks.
type Problem struct {
	LP *lp.Problem
	// Integer[j] == true requires variable j to take an integer value.
	Integer []bool
}

// Validate checks the MILP for dimensional consistency.
func (p *Problem) Validate() error {
	if p.LP == nil {
		return errors.New("mip: nil LP")
	}
	if err := p.LP.Validate(); err != nil {
		return err
	}
	if len(p.Integer) != p.LP.NumVars() {
		return fmt.Errorf("mip: |Integer|=%d, want %d", len(p.Integer), p.LP.NumVars())
	}
	return nil
}

// Options tunes the branch-and-bound search. Zero value = defaults.
type Options struct {
	// MaxNodes bounds explored nodes; ≤0 selects 200000.
	MaxNodes int
	// TimeLimit bounds wall time; 0 means none.
	TimeLimit time.Duration
	// RelGap is the relative optimality gap at which search stops;
	// ≤0 selects 1e-9.
	RelGap float64
	// IntTol is the integrality tolerance; ≤0 selects 1e-6.
	IntTol float64
	// Rule selects the branching rule.
	Rule BranchRule
	// DisableHeuristic turns off the rounding primal heuristic.
	DisableHeuristic bool
	// LP forwards options to the simplex.
	LP lp.Options
}

func (o Options) withDefaults() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 200000
	}
	if o.RelGap <= 0 {
		o.RelGap = 1e-9
	}
	if o.IntTol <= 0 {
		o.IntTol = 1e-6
	}
	return o
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status Status
	X      []float64
	Obj    float64
	// Bound is the best proven lower bound on the optimum.
	Bound float64
	// Nodes is the number of branch-and-bound nodes solved.
	Nodes int
	// Gap is the final relative gap |Obj−Bound| / max(1,|Obj|).
	Gap float64
}

type node struct {
	lower, upper []float64 // variable bound overrides
	bound        float64   // parent LP objective (lower bound)
	depth        int

	// branching provenance, used to update pseudo-costs when the node's own
	// relaxation is solved. branchVar < 0 at the root.
	branchVar  int
	branchUp   bool
	branchFrac float64 // fractional part of the parent value of branchVar
}

type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Solve minimises the MILP with default options.
func Solve(p *Problem) (*Solution, error) { return SolveWithOptions(p, Options{}) }

// SolveWithOptions minimises the MILP with the given options.
func SolveWithOptions(p *Problem, opts Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	b := &bnb{p: p, opts: opts, start: time.Now()}
	return b.run()
}

type bnb struct {
	p     *Problem
	opts  Options
	start time.Time

	incumbent []float64
	incObj    float64
	hasInc    bool

	// pseudo-cost statistics per variable and direction.
	psUp, psDown     []float64
	psUpN, psDownN   []int
	nodes            int
	work             *lp.Problem // scratch problem with per-node bounds
	baseLower, baseU []float64
}

func (b *bnb) run() (*Solution, error) {
	n := b.p.LP.NumVars()
	b.psUp = make([]float64, n)
	b.psDown = make([]float64, n)
	b.psUpN = make([]int, n)
	b.psDownN = make([]int, n)
	b.incObj = math.Inf(1)

	b.work = b.p.LP.Clone()
	if b.work.Lower == nil {
		b.work.Lower = make([]float64, n)
	}
	if b.work.Upper == nil {
		b.work.Upper = make([]float64, n)
		for j := range b.work.Upper {
			b.work.Upper[j] = math.Inf(1)
		}
	}
	b.baseLower = append([]float64(nil), b.work.Lower...)
	b.baseU = append([]float64(nil), b.work.Upper...)

	root := &node{
		lower:     append([]float64(nil), b.work.Lower...),
		upper:     append([]float64(nil), b.work.Upper...),
		bound:     math.Inf(-1),
		branchVar: -1,
	}
	open := &nodeHeap{}
	heap.Init(open)
	heap.Push(open, root)

	bestBound := math.Inf(-1)
	limitHit := false

	for open.Len() > 0 {
		if b.nodes >= b.opts.MaxNodes {
			limitHit = true
			break
		}
		if b.opts.TimeLimit > 0 && time.Since(b.start) > b.opts.TimeLimit {
			limitHit = true
			break
		}
		nd := heap.Pop(open).(*node)
		bestBound = nd.bound
		if b.hasInc && !improves(nd.bound, b.incObj, b.opts.RelGap) {
			// Everything left is worse than the incumbent.
			bestBound = b.incObj
			break
		}
		b.processNode(nd, open)
	}
	if open.Len() == 0 && !limitHit {
		bestBound = b.incObj // search exhausted: incumbent is optimal
	} else if open.Len() > 0 {
		// Tighten bound from remaining open nodes.
		mn := math.Inf(1)
		for _, nd := range *open {
			if nd.bound < mn {
				mn = nd.bound
			}
		}
		if mn < bestBound || math.IsInf(bestBound, -1) {
			bestBound = math.Max(bestBound, mn)
		}
	}

	sol := &Solution{Nodes: b.nodes, Bound: bestBound}
	switch {
	case b.hasInc && (!limitHit || !improves(bestBound, b.incObj, b.opts.RelGap)):
		sol.Status = StatusOptimal
		sol.X = b.incumbent
		sol.Obj = b.incObj
	case b.hasInc:
		sol.Status = StatusFeasible
		sol.X = b.incumbent
		sol.Obj = b.incObj
	case limitHit:
		sol.Status = StatusLimit
	default:
		sol.Status = StatusInfeasible
	}
	if b.hasInc {
		sol.Gap = math.Abs(sol.Obj-sol.Bound) / math.Max(1, math.Abs(sol.Obj))
	}
	return sol, nil
}

// improves reports whether bound is meaningfully below obj.
func improves(bound, obj, relGap float64) bool {
	return bound < obj-relGap*math.Max(1, math.Abs(obj))-1e-12
}

func (b *bnb) processNode(nd *node, open *nodeHeap) {
	// Depth-first plunge: repeatedly solve the node and dive onto one child,
	// pushing the sibling onto the open heap.
	for {
		b.nodes++
		copy(b.work.Lower, nd.lower)
		copy(b.work.Upper, nd.upper)
		sol, err := lp.SolveWithOptions(b.work, b.opts.LP)
		if err != nil || sol.Status == lp.StatusInfeasible {
			return
		}
		if sol.Status == lp.StatusUnbounded {
			// Relaxation unbounded at the root means MILP unbounded; deeper
			// nodes inherit the certificate, so prune conservatively.
			return
		}
		if sol.Status == lp.StatusIterLimit {
			return // treat as prune; bound unknown
		}
		if nd.branchVar >= 0 && !math.IsInf(nd.bound, -1) {
			// Pseudo-cost update: per-unit objective degradation of the
			// branch that created this node.
			degr := math.Max(0, sol.Obj-nd.bound)
			j := nd.branchVar
			if nd.branchUp {
				b.psUp[j] += degr / math.Max(1-nd.branchFrac, 1e-9)
				b.psUpN[j]++
			} else {
				b.psDown[j] += degr / math.Max(nd.branchFrac, 1e-9)
				b.psDownN[j]++
			}
		}
		if b.hasInc && !improves(sol.Obj, b.incObj, b.opts.RelGap) {
			return // dominated
		}
		frac := b.pickBranch(sol.X)
		if frac < 0 {
			// Integer feasible.
			b.offerIncumbent(sol.X, sol.Obj)
			return
		}
		if !b.opts.DisableHeuristic {
			b.tryRounding(sol.X)
		}
		xj := sol.X[frac]
		fl := math.Floor(xj + b.opts.IntTol)
		// Children: x_j ≤ fl and x_j ≥ fl+1.
		fpart := xj - math.Floor(xj)
		down := &node{
			lower: append([]float64(nil), nd.lower...),
			upper: append([]float64(nil), nd.upper...),
			bound: sol.Obj, depth: nd.depth + 1,
			branchVar: frac, branchUp: false, branchFrac: fpart,
		}
		down.upper[frac] = fl
		up := &node{
			lower: append([]float64(nil), nd.lower...),
			upper: append([]float64(nil), nd.upper...),
			bound: sol.Obj, depth: nd.depth + 1,
			branchVar: frac, branchUp: true, branchFrac: fpart,
		}
		up.lower[frac] = fl + 1

		// Dive toward the nearer integer, push the sibling.
		if xj-fl <= 0.5 {
			heap.Push(open, up)
			nd = down
		} else {
			heap.Push(open, down)
			nd = up
		}
		if b.nodes >= b.opts.MaxNodes {
			heap.Push(open, nd)
			return
		}
	}
}

// pickBranch returns the index of the integer variable to branch on, or -1
// if x is integer feasible.
func (b *bnb) pickBranch(x []float64) int {
	tol := b.opts.IntTol
	best, bestScore := -1, -1.0
	for j, isInt := range b.p.Integer {
		if !isInt {
			continue
		}
		f := x[j] - math.Floor(x[j])
		dist := math.Min(f, 1-f)
		if dist <= tol {
			continue
		}
		switch b.opts.Rule {
		case BranchFirstFractional:
			return j
		case BranchPseudoCost:
			up := avg(b.psUp[j], b.psUpN[j])
			down := avg(b.psDown[j], b.psDownN[j])
			score := math.Max(up*(1-f), 1e-6) * math.Max(down*f, 1e-6)
			if b.psUpN[j]+b.psDownN[j] == 0 {
				score = dist // uninitialised: fall back to fractionality
			}
			if score > bestScore {
				best, bestScore = j, score
			}
		default: // most fractional
			if dist > bestScore {
				best, bestScore = j, dist
			}
		}
	}
	return best
}

func avg(sum float64, n int) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// offerIncumbent records x if it beats the current incumbent.
func (b *bnb) offerIncumbent(x []float64, obj float64) {
	if obj < b.incObj-1e-12 {
		b.incumbent = append([]float64(nil), x...)
		// Snap integers exactly.
		for j, isInt := range b.p.Integer {
			if isInt {
				b.incumbent[j] = math.Round(b.incumbent[j])
			}
		}
		b.incObj = obj
		b.hasInc = true
	}
}

// tryRounding rounds the fractional relaxation point and accepts it if it is
// feasible for the original problem.
func (b *bnb) tryRounding(x []float64) {
	cand := append([]float64(nil), x...)
	for j, isInt := range b.p.Integer {
		if isInt {
			cand[j] = math.Round(cand[j])
			lo, hi := b.baseLower[j], b.baseU[j]
			if cand[j] < lo {
				cand[j] = math.Ceil(lo)
			}
			if cand[j] > hi {
				cand[j] = math.Floor(hi)
			}
		}
	}
	if !b.feasible(cand) {
		return
	}
	obj := 0.0
	for j, c := range b.p.LP.C {
		obj += c * cand[j]
	}
	if obj < b.incObj-1e-12 {
		b.incumbent = cand
		b.incObj = obj
		b.hasInc = true
	}
}

func (b *bnb) feasible(x []float64) bool {
	const tol = 1e-7
	for j := range x {
		if x[j] < b.baseLower[j]-tol || x[j] > b.baseU[j]+tol {
			return false
		}
	}
	for i, row := range b.p.LP.A {
		v := 0.0
		for j := range row {
			v += row[j] * x[j]
		}
		switch b.p.LP.Rel[i] {
		case lp.LE:
			if v > b.p.LP.B[i]+tol {
				return false
			}
		case lp.GE:
			if v < b.p.LP.B[i]-tol {
				return false
			}
		case lp.EQ:
			if math.Abs(v-b.p.LP.B[i]) > tol {
				return false
			}
		}
	}
	return true
}
