// Package mip provides a parallel branch-and-bound solver for mixed-integer
// linear programs, built on the bounded-variable simplex in internal/lp. It
// is the general-purpose optimisation engine behind the DRRP and SRRP
// planning models: best-bound search with depth-first plunging, most-
// fractional or pseudo-cost branching, and a rounding primal heuristic.
//
// # Parallel search
//
// Options.Workers sets the worker-pool size (≤0 selects all cores;
// Workers = 1 preserves the deterministic serial search). Each worker owns
// a private clone of the LP and its scratch buffers and pulls nodes from a
// shared best-bound heap; incumbents are published atomically so pruning
// stays globally correct, and pseudo-cost statistics are shared through
// per-variable atomic accumulators. The proven optimal objective is
// identical for every worker count.
//
// # Observability
//
// Every Solution carries a final Stats snapshot: node throughput, total
// simplex iterations, the incumbent trajectory with timestamps and bounds
// (i.e. the gap over time), and per-worker node counts. Set
// Options.Progress to stream periodic snapshots during the solve; the
// callback also fires on every incumbent improvement.
package mip

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"rentplan/internal/lp"
	"rentplan/internal/num"
)

// Status reports the outcome of a MILP solve.
type Status int8

const (
	// StatusOptimal means an optimal integer solution was proven.
	StatusOptimal Status = iota
	// StatusInfeasible means no integer-feasible point exists.
	StatusInfeasible
	// StatusUnbounded means the relaxation (and hence the MILP) is unbounded.
	StatusUnbounded
	// StatusFeasible means the search stopped at a limit with an incumbent
	// but without a proof of optimality.
	StatusFeasible
	// StatusLimit means the search stopped at a limit with no incumbent.
	StatusLimit
	// StatusTimeLimit means the wall-clock budget expired — Options.TimeLimit
	// or the deadline of the context passed to SolveCtx, whichever fired.
	// X/Obj hold the best incumbent when one exists, and Bound remains a
	// valid lower bound (the lostBound machinery accounts every subtree the
	// deadline cut off).
	StatusTimeLimit
	// StatusCanceled means the context passed to SolveCtx was canceled
	// before the search finished. Incumbent and bound semantics are the same
	// as for StatusTimeLimit; a canceled solve never claims optimality
	// unless the tree was already exhausted when the cancellation landed.
	StatusCanceled
)

func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusInfeasible:
		return "infeasible"
	case StatusUnbounded:
		return "unbounded"
	case StatusFeasible:
		return "feasible"
	case StatusLimit:
		return "limit"
	case StatusTimeLimit:
		return "time-limit"
	case StatusCanceled:
		return "canceled"
	}
	return fmt.Sprintf("Status(%d)", int8(s))
}

// BranchRule selects how the fractional branching variable is chosen.
type BranchRule int8

const (
	// BranchMostFractional picks the integer variable whose relaxation value
	// is closest to .5.
	BranchMostFractional BranchRule = iota
	// BranchPseudoCost picks the variable with the best observed
	// degradation history, falling back to most-fractional early on.
	BranchPseudoCost
	// BranchFirstFractional picks the lowest-indexed fractional variable.
	BranchFirstFractional
)

// Problem is a mixed integer linear program: an LP plus integrality marks.
type Problem struct {
	LP *lp.Problem
	// Integer[j] == true requires variable j to take an integer value.
	Integer []bool
}

// Validate checks the MILP for dimensional consistency.
func (p *Problem) Validate() error {
	if p.LP == nil {
		return errors.New("mip: nil LP")
	}
	if err := p.LP.Validate(); err != nil {
		return err
	}
	if len(p.Integer) != p.LP.NumVars() {
		return fmt.Errorf("mip: |Integer|=%d, want %d", len(p.Integer), p.LP.NumVars())
	}
	return nil
}

// Options tunes the branch-and-bound search. Zero value = defaults.
type Options struct {
	// MaxNodes bounds explored nodes; ≤0 selects 200000.
	MaxNodes int
	// TimeLimit bounds wall time; 0 means none.
	TimeLimit time.Duration
	// RelGap is the relative optimality gap at which search stops;
	// ≤0 selects 1e-9.
	RelGap float64
	// IntTol is the integrality tolerance; ≤0 selects 1e-6.
	IntTol float64
	// Rule selects the branching rule.
	Rule BranchRule
	// DisableHeuristic turns off the rounding primal heuristic.
	DisableHeuristic bool
	// NoWarmStart disables basis warm-starting of child node relaxations,
	// forcing every node onto the cold two-phase simplex path. Results are
	// identical either way; the switch exists for A/B benchmarking and for
	// isolating the warm-start machinery when debugging.
	NoWarmStart bool
	// RootBasis, when non-nil, warm-starts the root relaxation from a prior
	// solve of the same (or a structurally identical) problem — typically
	// the Solution.RootBasis of another tenant's solve over a shared
	// scenario tree. A Basis is immutable, so one snapshot may be passed to
	// any number of concurrent solves. A stale or mismatched basis is
	// harmless: the simplex falls back to the bit-identical cold path.
	// Ignored when NoWarmStart is set.
	RootBasis *lp.Basis
	// Workers is the number of branch-and-bound workers; ≤0 selects
	// runtime.GOMAXPROCS(0). Workers = 1 preserves the deterministic
	// serial search order.
	Workers int
	// Progress, when non-nil, receives Stats snapshots: periodically
	// (every ProgressEvery) and on every incumbent improvement. The
	// callback is serialised — it is never invoked concurrently — but may
	// run on any worker goroutine, so it must not call back into the
	// solver.
	Progress func(Stats)
	// ProgressEvery is the minimum interval between periodic Progress
	// callbacks; ≤0 selects 200ms.
	ProgressEvery time.Duration
	// LP forwards options to the simplex.
	LP lp.Options
}

func (o Options) withDefaults() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 200000
	}
	if o.RelGap <= 0 {
		o.RelGap = num.RelGapTol
	}
	if o.IntTol <= 0 {
		o.IntTol = num.IntTol
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ProgressEvery <= 0 {
		o.ProgressEvery = 200 * time.Millisecond
	}
	return o
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status Status
	X      []float64
	Obj    float64
	// Bound is the best proven lower bound on the optimum: the minimum
	// relaxation bound over the unexplored frontier when a limit stops the
	// search early, or the incumbent objective once the tree is exhausted.
	Bound float64
	// Nodes is the number of branch-and-bound nodes solved.
	Nodes int
	// Gap is the final relative gap |Obj−Bound| / max(1,|Obj|).
	Gap float64
	// Stats is the final solver-progress snapshot (throughput, simplex
	// iterations, incumbent trajectory, per-worker node counts).
	Stats Stats
	// RootBasis is the optimal basis of the root relaxation, captured so a
	// later solve over the same problem structure can warm-start through
	// Options.RootBasis. Nil when the root relaxation did not reach
	// optimality. The snapshot is immutable and safe to share.
	RootBasis *lp.Basis
}

type node struct {
	lower, upper []float64 // variable bound overrides
	bound        float64   // parent LP objective (lower bound)
	depth        int

	// basis is the parent's optimal LP basis, used to warm-start this node's
	// relaxation. A Basis is immutable, so siblings (and workers) share the
	// same snapshot without copying; nil at the root forces a cold solve.
	basis *lp.Basis

	// branching provenance, used to update pseudo-costs when the node's own
	// relaxation is solved. branchVar < 0 at the root.
	branchVar  int
	branchUp   bool
	branchFrac float64 // fractional part of the parent value of branchVar
}

type nodeHeap []*node

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

// Solve minimises the MILP with default options.
func Solve(p *Problem) (*Solution, error) { return SolveWithOptions(p, Options{}) }

// SolveWithOptions minimises the MILP with the given options.
func SolveWithOptions(p *Problem, opts Options) (*Solution, error) {
	return SolveCtx(context.Background(), p, opts)
}

// SolveCtx minimises the MILP like SolveWithOptions, additionally observing
// ctx. Cancellation is cooperative and unified with Options.TimeLimit: a
// positive TimeLimit is installed as a deadline on the context handed to
// every node LP, so a single long relaxation can overshoot the budget by at
// most a few simplex pivots rather than by its whole runtime. An expired
// deadline (either source) yields StatusTimeLimit, an explicit cancellation
// StatusCanceled; both carry the best incumbent found and a valid bound. A
// background context with TimeLimit == 0 is bit-identical to
// SolveWithOptions.
func SolveCtx(ctx context.Context, p *Problem, opts Options) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return newBnB(ctx, p, opts.withDefaults()).run(), nil
}

// atomicFloat64 is a float64 with atomic load and add, used for the shared
// pseudo-cost accumulators.
type atomicFloat64 struct{ bits atomic.Uint64 }

func (a *atomicFloat64) Load() float64 { return math.Float64frombits(a.bits.Load()) }

func (a *atomicFloat64) Add(v float64) {
	for {
		old := a.bits.Load()
		if a.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// bnb is the shared search state. The open heap, incumbent, limit flags and
// per-worker accounting are guarded by mu; the incumbent objective is
// mirrored in incBits for lock-free pruning reads, and the pseudo-cost
// tables are per-variable atomic accumulators.
type bnb struct {
	p     *Problem
	opts  Options
	start time.Time

	// ctx is observed by every worker between node pops and inside every
	// node LP; cancel releases the deadline derived from Options.TimeLimit.
	ctx    context.Context
	cancel context.CancelFunc

	baseLower, baseUpper []float64 // original variable bounds (nil-expanded)
	rowAbs               []float64 // Σ_j |A_ij| per row: snap-tolerance scale

	lpOpts lp.Options // node LP options, resolved once at solve start

	iters   atomic.Int64  // simplex pivots across all node LPs
	incBits atomic.Uint64 // float bits of the incumbent objective (+Inf = none)

	// warm-start accounting: how each node LP was dispatched and how many
	// pivots each dispatch class consumed.
	warmHits      atomic.Int64
	warmMisses    atomic.Int64
	warmDuals     atomic.Int64
	warmFallbacks atomic.Int64
	warmIters     atomic.Int64
	coldNodes     atomic.Int64
	coldIters     atomic.Int64

	// dual-simplex / eta-file accounting aggregated from the node LPs.
	dualIters        atomic.Int64
	etaCount         atomic.Int64
	refactorizations atomic.Int64

	// sparse-pricing accounting aggregated from the node LP solutions.
	pricingSweeps atomic.Int64
	candHits      atomic.Int64
	nnz           int // structural nonzeros, constant per solve

	psUp, psDown   []atomicFloat64
	psUpN, psDownN []atomic.Int64

	mu          sync.Mutex
	cond        *sync.Cond
	open        nodeHeap
	idle        int  // workers blocked on an empty frontier
	stopped     bool // terminal: limit, unboundedness or exhaustion
	limitHit    bool
	timeHit     bool // wall-clock budget expired (TimeLimit or ctx deadline)
	canceled    bool // caller context canceled
	unbounded   bool
	lostBound   float64 // min bound over subtrees dropped at an LP iteration limit; +Inf if none
	nodes       int
	workerNodes []int
	inflight    []float64 // per-worker bound of the subtree being plunged; +Inf idle
	incumbent   []float64
	incObj      float64
	hasInc      bool
	history     []IncumbentRecord

	progressMu   sync.Mutex
	lastProgress time.Time

	// rootBasis is the root relaxation's optimal basis. Written once by the
	// single worker that pops the root node, read in finish() after the
	// worker pool has drained — the WaitGroup orders the accesses.
	rootBasis *lp.Basis
}

func newBnB(ctx context.Context, p *Problem, opts Options) *bnb {
	n := p.LP.NumVars()
	b := &bnb{p: p, opts: opts, start: now(), incObj: math.Inf(1), lostBound: math.Inf(1)}
	b.ctx = ctx
	if opts.TimeLimit > 0 {
		// Unify TimeLimit with the context: node LPs inherit the remaining
		// wall-clock budget as a deadline, so the time-limit check no longer
		// fires only between node pops (a single long LP used to blow far
		// past TimeLimit).
		b.ctx, b.cancel = context.WithDeadline(ctx, b.start.Add(opts.TimeLimit))
	}
	// Resolve the LP options exactly once so a caller-supplied Tol or
	// MaxIter reaches every node identically on both the warm and the cold
	// dispatch paths, instead of being re-defaulted per node.
	b.lpOpts = opts.LP.Resolved(p.LP.NumRows(), n)
	// Presolve would suppress the basis snapshots the warm-start machinery
	// feeds on (and reshape the node LPs), so node relaxations always run
	// unreduced regardless of the caller's LP options.
	b.lpOpts.Presolve = false
	b.cond = sync.NewCond(&b.mu)
	b.incBits.Store(math.Float64bits(math.Inf(1)))
	b.psUp = make([]atomicFloat64, n)
	b.psDown = make([]atomicFloat64, n)
	b.psUpN = make([]atomic.Int64, n)
	b.psDownN = make([]atomic.Int64, n)
	b.baseLower = make([]float64, n)
	b.baseUpper = make([]float64, n)
	for j := range b.baseUpper {
		b.baseUpper[j] = math.Inf(1)
	}
	if p.LP.Lower != nil {
		copy(b.baseLower, p.LP.Lower)
	}
	if p.LP.Upper != nil {
		copy(b.baseUpper, p.LP.Upper)
	}
	b.rowAbs = make([]float64, p.LP.NumRows())
	for i := range b.rowAbs {
		b.rowAbs[i] = p.LP.RowAbsSum(i)
	}
	b.nnz = p.LP.NNZ()
	b.workerNodes = make([]int, opts.Workers)
	b.inflight = make([]float64, opts.Workers)
	for i := range b.inflight {
		b.inflight[i] = math.Inf(1)
	}
	return b
}

func (b *bnb) run() *Solution {
	if b.cancel != nil {
		defer b.cancel()
	}
	root := &node{
		lower:     append([]float64(nil), b.baseLower...),
		upper:     append([]float64(nil), b.baseUpper...),
		bound:     math.Inf(-1),
		branchVar: -1,
		basis:     b.opts.RootBasis, // nil → cold root, as before
	}
	heap.Init(&b.open)
	heap.Push(&b.open, root)

	if w := len(b.workerNodes); w == 1 {
		b.worker(0) // serial path: no goroutines, deterministic order
	} else {
		var wg sync.WaitGroup
		wg.Add(w)
		for id := 0; id < w; id++ {
			go func(id int) {
				defer wg.Done()
				b.worker(id)
			}(id)
		}
		wg.Wait()
	}
	return b.finish()
}

// worker pulls nodes from the shared frontier until the search terminates.
// Each worker owns its LP clone, so node bound overrides never race.
func (b *bnb) worker(id int) {
	work := b.p.LP.Clone()
	if work.Lower == nil {
		work.Lower = append([]float64(nil), b.baseLower...)
	}
	if work.Upper == nil {
		work.Upper = append([]float64(nil), b.baseUpper...)
	}
	for {
		nd := b.next(id)
		if nd == nil {
			return
		}
		b.processNode(id, work, nd)
		b.mu.Lock()
		b.inflight[id] = math.Inf(1)
		b.mu.Unlock()
	}
}

// next pops the best-bound open node, blocking while the frontier is empty
// but other workers are still expanding it. It returns nil on termination:
// limits, unboundedness, or a fully explored tree.
func (b *bnb) next(id int) *node {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.stopped {
			return nil
		}
		if b.checkStopLocked() {
			return nil
		}
		// Best-bound order: if the cheapest open node cannot beat the
		// incumbent, neither can any other — the whole frontier is proven
		// dominated and can be dropped.
		if len(b.open) > 0 && b.hasInc && !improves(b.open[0].bound, b.incObj, b.opts.RelGap) {
			b.open = b.open[:0]
		}
		if len(b.open) > 0 {
			nd := heap.Pop(&b.open).(*node)
			b.inflight[id] = nd.bound
			return nd
		}
		if b.idle == len(b.inflight)-1 {
			// Every other worker is already waiting on the empty frontier:
			// the tree is exhausted.
			b.stopLocked()
			return nil
		}
		b.idle++
		b.cond.Wait()
		b.idle--
	}
}

func (b *bnb) stopLocked() {
	b.stopped = true
	b.cond.Broadcast()
}

func (b *bnb) overTime() bool {
	return b.opts.TimeLimit > 0 && since(b.start) > b.opts.TimeLimit
}

// checkStopLocked classifies and flags the applicable stop cause — node
// limit, wall-clock budget (Options.TimeLimit or the caller context's
// deadline), or explicit cancellation — and terminates the search when one
// fired. Callers must hold mu.
func (b *bnb) checkStopLocked() bool {
	switch err := b.ctx.Err(); {
	case b.nodes >= b.opts.MaxNodes:
		b.limitHit = true
	case b.overTime() || err == context.DeadlineExceeded:
		b.timeHit = true
	case err != nil:
		b.canceled = true
	default:
		return false
	}
	b.stopLocked()
	return true
}

// reserve accounts one node about to be solved, enforcing the node and time
// limits exactly (the counter never exceeds MaxNodes, for any worker count),
// and refreshes the worker's in-flight bound so the global bound tightens as
// a plunge dives (each dived node's bound is valid for its whole subtree).
func (b *bnb) reserve(id int, nd *node) bool {
	if b.opts.Progress != nil {
		b.emitProgress(false)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.stopped {
		return false
	}
	if b.checkStopLocked() {
		return false
	}
	b.nodes++
	b.workerNodes[id]++
	b.inflight[id] = nd.bound
	return true
}

func (b *bnb) pushNode(nd *node) {
	b.mu.Lock()
	heap.Push(&b.open, nd)
	b.cond.Signal()
	b.mu.Unlock()
}

// recordLost accounts a subtree dropped because its relaxation hit the LP
// iteration limit: the search can no longer prove anything below the
// subtree's entry bound, so that bound caps the final proven bound and the
// stop is flagged as a limit rather than an exhaustive proof.
func (b *bnb) recordLost(bound float64) {
	b.mu.Lock()
	b.limitHit = true
	if bound < b.lostBound {
		b.lostBound = bound
	}
	b.mu.Unlock()
}

// recordLostCtx accounts a subtree whose relaxation was cut off by the
// context — deadline or cancellation — keeping the final bound honest, and
// stops the search (every other worker would observe the same context).
func (b *bnb) recordLostCtx(bound float64) {
	b.mu.Lock()
	if b.overTime() || b.ctx.Err() == context.DeadlineExceeded {
		b.timeHit = true
	} else {
		b.canceled = true
	}
	if bound < b.lostBound {
		b.lostBound = bound
	}
	b.stopLocked()
	b.mu.Unlock()
}

func (b *bnb) markUnbounded() {
	b.mu.Lock()
	b.unbounded = true
	b.stopLocked()
	b.mu.Unlock()
}

// currentIncumbent returns the incumbent objective without taking the lock;
// a stale read only weakens pruning, never correctness.
func (b *bnb) currentIncumbent() (float64, bool) {
	v := math.Float64frombits(b.incBits.Load())
	return v, !math.IsInf(v, 1)
}

func (b *bnb) finish() *Solution {
	// Workers have exited; every interrupted plunge pushed its subtree back,
	// so the heap holds exactly the unexplored frontier — plus any subtree
	// recorded as lost when its relaxation hit the LP iteration limit.
	mn := b.lostBound
	for _, nd := range b.open {
		if nd.bound < mn {
			mn = nd.bound
		}
	}
	frontier := len(b.open) > 0 || !math.IsInf(b.lostBound, 1)
	if !frontier && !b.unbounded {
		// An empty frontier means the tree was fully explored; a limit,
		// deadline or cancellation that fired in the same instant proved
		// nothing weaker.
		b.limitHit, b.timeHit, b.canceled = false, false, false
	}
	var bound float64
	switch {
	case b.unbounded:
		bound = math.Inf(-1)
	case frontier:
		bound = mn // true minimum over the open frontier and lost subtrees
		if b.hasInc && bound > b.incObj {
			bound = b.incObj // frontier dominated: the incumbent is the proof
		}
	default:
		bound = b.incObj // +Inf when no incumbent: min over an empty frontier
	}
	sol := &Solution{Nodes: b.nodes, Bound: bound}
	stopped := b.limitHit || b.timeHit || b.canceled
	switch {
	case b.unbounded:
		sol.Status = StatusUnbounded
	case b.hasInc && (!stopped || !improves(bound, b.incObj, b.opts.RelGap)):
		sol.Status = StatusOptimal
		sol.X = b.incumbent
		sol.Obj = b.incObj
	case b.timeHit:
		sol.Status = StatusTimeLimit
		if b.hasInc {
			sol.X = b.incumbent
			sol.Obj = b.incObj
		}
	case b.canceled:
		sol.Status = StatusCanceled
		if b.hasInc {
			sol.X = b.incumbent
			sol.Obj = b.incObj
		}
	case b.hasInc:
		sol.Status = StatusFeasible
		sol.X = b.incumbent
		sol.Obj = b.incObj
	case b.limitHit:
		sol.Status = StatusLimit
	default:
		sol.Status = StatusInfeasible
	}
	if b.hasInc {
		sol.Gap = relGap(sol.Obj, sol.Bound)
	}
	b.mu.Lock()
	st := b.snapshotLocked()
	b.mu.Unlock()
	st.Bound = sol.Bound
	st.Gap = sol.Gap
	sol.Stats = st
	sol.RootBasis = b.rootBasis
	return sol
}

// improves reports whether bound is meaningfully below obj.
func improves(bound, obj, relGap float64) bool {
	return bound < obj-relGap*math.Max(1, math.Abs(obj))-num.DriftTol
}

// branchPoint returns the down-branch ceiling fl (children are x ≤ fl and
// x ≥ fl+1) and the fractional part of xj measured consistently against
// that same fl, clamped to [0,1]. A value within tol just below an integer
// therefore yields fpart ≈ 0, never a near-1 artefact that would pollute
// the pseudo-cost averages.
func branchPoint(xj, tol float64) (fl, fpart float64) {
	fl = math.Floor(xj + tol)
	fpart = xj - fl
	if fpart < 0 {
		fpart = 0
	}
	if fpart > 1 {
		fpart = 1
	}
	return fl, fpart
}

// processNode depth-first plunges from nd: repeatedly solve the relaxation
// and dive onto one child, pushing the sibling onto the shared frontier.
func (b *bnb) processNode(id int, work *lp.Problem, nd *node) {
	for {
		if !b.reserve(id, nd) {
			// A limit or stop fired mid-plunge: return the unexplored
			// subtree to the frontier so the final bound stays exact.
			b.pushNode(nd)
			return
		}
		copy(work.Lower, nd.lower)
		copy(work.Upper, nd.upper)
		var sol *lp.Solution
		var err error
		if nd.basis != nil && !b.opts.NoWarmStart {
			sol, err = lp.SolveFromCtx(b.ctx, work, nd.basis, b.lpOpts)
		} else {
			sol, err = lp.SolveCtx(b.ctx, work, b.lpOpts)
		}
		if err != nil {
			return
		}
		b.iters.Add(int64(sol.Iterations))
		b.pricingSweeps.Add(int64(sol.PricingSweeps))
		b.candHits.Add(int64(sol.CandidateHits))
		b.dualIters.Add(int64(sol.DualIters))
		b.etaCount.Add(int64(sol.EtaCount))
		b.refactorizations.Add(int64(sol.Refactorizations))
		switch sol.WarmStart {
		case lp.WarmHit:
			b.warmHits.Add(1)
			b.warmIters.Add(int64(sol.Iterations))
		case lp.WarmMiss:
			b.warmMisses.Add(1)
			b.warmIters.Add(int64(sol.Iterations))
		case lp.WarmDual:
			b.warmDuals.Add(1)
			b.warmIters.Add(int64(sol.Iterations))
		case lp.WarmFallback:
			b.warmFallbacks.Add(1)
			b.warmIters.Add(int64(sol.Iterations))
		default:
			b.coldNodes.Add(1)
			b.coldIters.Add(int64(sol.Iterations))
		}
		switch sol.Status {
		case lp.StatusInfeasible:
			return
		case lp.StatusUnbounded:
			if nd.branchVar < 0 {
				// Unbounded root relaxation: the MILP itself is unbounded.
				b.markUnbounded()
			}
			// Deeper nodes: prune conservatively — the ray need not respect
			// this subtree's integrality restrictions.
			return
		case lp.StatusIterLimit:
			// The subtree's true bound is unknown: its LP never finished, so
			// dropping it silently would let finish() claim a proven optimum
			// it does not have. Record the parent bound as "lost" so the
			// final bound and status account for the unexplored subtree.
			b.recordLost(nd.bound)
			return
		case lp.StatusCanceled:
			// The node LP observed the context dying mid-solve. The subtree
			// bound is lost exactly as at an LP iteration limit, but the
			// stop is classified as a deadline/cancellation, not a search
			// limit, and the whole search winds down.
			b.recordLostCtx(nd.bound)
			return
		}
		if nd.branchVar < 0 {
			// Root relaxation solved to optimality: publish its basis so the
			// caller can warm-start sibling solves over the same structure.
			b.rootBasis = sol.Basis
		}
		if nd.branchVar >= 0 && !math.IsInf(nd.bound, -1) {
			// Pseudo-cost update: per-unit objective degradation of the
			// branch that created this node.
			degr := math.Max(0, sol.Obj-nd.bound)
			j := nd.branchVar
			if nd.branchUp {
				b.psUp[j].Add(degr / math.Max(1-nd.branchFrac, b.opts.IntTol))
				b.psUpN[j].Add(1)
			} else {
				b.psDown[j].Add(degr / math.Max(nd.branchFrac, b.opts.IntTol))
				b.psDownN[j].Add(1)
			}
		}
		if inc, ok := b.currentIncumbent(); ok && !improves(sol.Obj, inc, b.opts.RelGap) {
			return // dominated
		}
		frac := b.pickBranch(sol.X)
		if frac < 0 {
			// Integer feasible (within tolerance).
			b.offerIncumbent(sol.X)
			return
		}
		if !b.opts.DisableHeuristic {
			b.tryRounding(sol.X)
		}
		fl, fpart := branchPoint(sol.X[frac], b.opts.IntTol)
		down := &node{
			lower: append([]float64(nil), nd.lower...),
			upper: append([]float64(nil), nd.upper...),
			bound: sol.Obj, depth: nd.depth + 1, basis: sol.Basis,
			branchVar: frac, branchUp: false, branchFrac: fpart,
		}
		down.upper[frac] = fl
		up := &node{
			lower: append([]float64(nil), nd.lower...),
			upper: append([]float64(nil), nd.upper...),
			bound: sol.Obj, depth: nd.depth + 1, basis: sol.Basis,
			branchVar: frac, branchUp: true, branchFrac: fpart,
		}
		up.lower[frac] = fl + 1

		// Dive toward the nearer integer, push the sibling.
		if fpart <= 0.5 {
			b.pushNode(up)
			nd = down
		} else {
			b.pushNode(down)
			nd = up
		}
	}
}

// pickBranch returns the index of the integer variable to branch on, or -1
// if x is integer feasible.
func (b *bnb) pickBranch(x []float64) int {
	tol := b.opts.IntTol
	best, bestScore := -1, -1.0
	for j, isInt := range b.p.Integer {
		if !isInt {
			continue
		}
		f := x[j] - math.Floor(x[j])
		dist := math.Min(f, 1-f)
		if dist <= tol {
			continue
		}
		switch b.opts.Rule {
		case BranchFirstFractional:
			return j
		case BranchPseudoCost:
			un, dn := b.psUpN[j].Load(), b.psDownN[j].Load()
			up := avg(b.psUp[j].Load(), un)
			down := avg(b.psDown[j].Load(), dn)
			score := math.Max(up*(1-f), num.PseudoCostFloor) * math.Max(down*f, num.PseudoCostFloor)
			if un+dn == 0 {
				score = dist // uninitialised: fall back to fractionality
			}
			if score > bestScore {
				best, bestScore = j, score
			}
		default: // most fractional
			if dist > bestScore {
				best, bestScore = j, dist
			}
		}
	}
	return best
}

func avg(sum float64, n int64) float64 {
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// offerIncumbent snaps the integer variables of an integral-within-tolerance
// relaxation point, recomputes the objective of the snapped point, and
// publishes it if it beats the incumbent. If snapping pushed the point out
// of feasibility it is rejected rather than recorded with a stale objective,
// so Solution.Obj always equals cᵀ·Solution.X.
func (b *bnb) offerIncumbent(x []float64) {
	cand := append([]float64(nil), x...)
	for j, isInt := range b.p.Integer {
		if isInt {
			cand[j] = math.Round(cand[j])
		}
	}
	// Snapping moves each integer coordinate by at most IntTol, so allow
	// row slack proportional to Σ_j |A_ij|.
	if !b.feasible(cand, true) {
		return
	}
	obj := 0.0
	for j, c := range b.p.LP.C {
		obj += c * cand[j]
	}
	b.publish(cand, obj)
}

// tryRounding rounds the fractional relaxation point and accepts it if it is
// feasible for the original problem.
func (b *bnb) tryRounding(x []float64) {
	cand := append([]float64(nil), x...)
	for j, isInt := range b.p.Integer {
		if isInt {
			cand[j] = math.Round(cand[j])
			lo, hi := b.baseLower[j], b.baseUpper[j]
			if cand[j] < lo {
				cand[j] = math.Ceil(lo)
			}
			if cand[j] > hi {
				cand[j] = math.Floor(hi)
			}
		}
	}
	if !b.feasible(cand, false) {
		return
	}
	obj := 0.0
	for j, c := range b.p.LP.C {
		obj += c * cand[j]
	}
	b.publish(cand, obj)
}

// publish installs x as the incumbent if it improves on the current one,
// records the trajectory point, and mirrors the objective for lock-free
// pruning.
func (b *bnb) publish(x []float64, obj float64) {
	b.mu.Lock()
	if obj >= b.incObj-num.DriftTol {
		b.mu.Unlock()
		return
	}
	b.incumbent = x
	b.incObj = obj
	b.hasInc = true
	b.incBits.Store(math.Float64bits(obj))
	rec := IncumbentRecord{
		Elapsed: since(b.start),
		Obj:     obj,
		Bound:   b.boundLocked(),
		Node:    b.nodes,
	}
	rec.Gap = relGap(obj, rec.Bound)
	b.history = append(b.history, rec)
	b.mu.Unlock()
	if b.opts.Progress != nil {
		b.emitProgress(true)
	}
}

// feasible checks x against the original bounds and rows. With scaled set,
// tolerances widen proportionally to IntTol (appropriate for points whose
// integer coordinates were snapped by at most IntTol); otherwise the strict
// fixed tolerance applies, as for heuristic rounding candidates.
func (b *bnb) feasible(x []float64, scaled bool) bool {
	btol := num.FeasTol
	if scaled {
		btol = b.opts.IntTol + num.SnapTol
	}
	for j := range x {
		if x[j] < b.baseLower[j]-btol || x[j] > b.baseUpper[j]+btol {
			return false
		}
	}
	for i := 0; i < b.p.LP.NumRows(); i++ {
		v := b.p.LP.RowDot(i, x)
		rtol := num.FeasTol
		if scaled {
			rtol += b.opts.IntTol * b.rowAbs[i]
		}
		switch b.p.LP.Rel[i] {
		case lp.LE:
			if v > b.p.LP.B[i]+rtol {
				return false
			}
		case lp.GE:
			if v < b.p.LP.B[i]-rtol {
				return false
			}
		case lp.EQ:
			if math.Abs(v-b.p.LP.B[i]) > rtol {
				return false
			}
		}
	}
	return true
}

// boundLocked returns the best proven lower bound at this instant: the
// minimum over the open frontier, every in-flight subtree, and any subtree
// lost to an LP iteration limit.
func (b *bnb) boundLocked() float64 {
	mn := b.lostBound
	if len(b.open) > 0 && b.open[0].bound < mn {
		mn = b.open[0].bound
	}
	for _, f := range b.inflight {
		if f < mn {
			mn = f
		}
	}
	if math.IsInf(mn, 1) && b.hasInc {
		mn = b.incObj
	}
	return mn
}

func (b *bnb) snapshotLocked() Stats {
	el := since(b.start)
	st := Stats{
		Elapsed:       el,
		Nodes:         b.nodes,
		SimplexIters:  b.iters.Load(),
		OpenNodes:     len(b.open),
		Workers:       len(b.workerNodes),
		WorkerNodes:   append([]int(nil), b.workerNodes...),
		HasIncumbent:  b.hasInc,
		Incumbent:     b.incObj,
		Incumbents:    append([]IncumbentRecord(nil), b.history...),
		WarmHits:         b.warmHits.Load(),
		WarmMisses:       b.warmMisses.Load(),
		WarmDuals:        b.warmDuals.Load(),
		WarmFallbacks:    b.warmFallbacks.Load(),
		WarmIters:        b.warmIters.Load(),
		ColdNodes:        b.coldNodes.Load(),
		ColdIters:        b.coldIters.Load(),
		PricingSweeps:    b.pricingSweeps.Load(),
		CandidateHits:    b.candHits.Load(),
		NNZ:              b.nnz,
		DualIters:        b.dualIters.Load(),
		EtaCount:         b.etaCount.Load(),
		Refactorizations: b.refactorizations.Load(),
	}
	if s := el.Seconds(); s > 0 {
		st.NodesPerSec = float64(b.nodes) / s
	}
	st.Bound = b.boundLocked()
	st.Gap = relGap(st.Incumbent, st.Bound)
	return st
}

// emitProgress delivers a Stats snapshot to the Progress callback, rate-
// limited to ProgressEvery unless forced (incumbent improvements). Calls
// are serialised on progressMu.
func (b *bnb) emitProgress(force bool) {
	b.progressMu.Lock()
	defer b.progressMu.Unlock()
	t := now()
	if !force && t.Sub(b.lastProgress) < b.opts.ProgressEvery {
		return
	}
	b.lastProgress = t
	b.mu.Lock()
	st := b.snapshotLocked()
	b.mu.Unlock()
	b.opts.Progress(st)
}
