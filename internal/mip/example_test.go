package mip_test

import (
	"fmt"

	"rentplan/internal/lp"
	"rentplan/internal/mip"
)

// ExampleSolve solves a small knapsack: pick items maximising value under a
// weight budget (minimise the negated value).
func ExampleSolve() {
	prob := &mip.Problem{
		LP: &lp.Problem{
			C:     []float64{-10, -13, -7, -11}, // negated values
			A:     [][]float64{{3, 4, 2, 3}},    // weights
			Rel:   []lp.Rel{lp.LE},
			B:     []float64{7},
			Upper: []float64{1, 1, 1, 1},
		},
		Integer: []bool{true, true, true, true},
	}
	sol, err := mip.Solve(prob)
	if err != nil {
		panic(err)
	}
	fmt.Printf("value %.0f, picks %v\n", -sol.Obj, sol.X)
	// Output: value 24, picks [0 1 0 1]
}
