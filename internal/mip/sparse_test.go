package mip

import (
	"math"
	"math/rand"
	"testing"

	"rentplan/internal/lp"
)

// TestSparsePricingAgreement runs the MILP corpus through every combination
// of workers={1,4}, warm/cold node dispatch, and candidate-list versus full
// pricing, and requires the identical proven optimum from each. Candidate
// pricing may pivot differently, so only status and objective must agree —
// and the counters must reflect the configured pricing mode.
func TestSparsePricingAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(271))
	corpus := []*Problem{
		knapsackInstance(rng, 14),
		knapsackInstance(rng, 18),
		lotSizingInstance(rng, 5),
		lotSizingInstance(rng, 7),
	}
	for pi, p := range corpus {
		ref, err := SolveWithOptions(p, Options{Workers: 1, LP: lp.Options{FullPricing: true}})
		if err != nil {
			t.Fatalf("instance %d reference: %v", pi, err)
		}
		if ref.Status != StatusOptimal {
			t.Fatalf("instance %d reference status %v", pi, ref.Status)
		}
		if ref.Stats.CandidateHits != 0 {
			t.Fatalf("instance %d: full pricing recorded %d candidate hits", pi, ref.Stats.CandidateHits)
		}
		if ref.Stats.NNZ == 0 {
			t.Fatalf("instance %d: NNZ not recorded", pi)
		}
		for _, workers := range []int{1, 4} {
			for _, cold := range []bool{false, true} {
				for _, full := range []bool{false, true} {
					sol, err := SolveWithOptions(p, Options{
						Workers:     workers,
						NoWarmStart: cold,
						LP:          lp.Options{FullPricing: full},
					})
					if err != nil {
						t.Fatalf("instance %d workers=%d cold=%v full=%v: %v", pi, workers, cold, full, err)
					}
					if sol.Status != StatusOptimal {
						t.Fatalf("instance %d workers=%d cold=%v full=%v: status %v",
							pi, workers, cold, full, sol.Status)
					}
					if math.Abs(sol.Obj-ref.Obj) > 1e-6 {
						t.Fatalf("instance %d workers=%d cold=%v full=%v: obj %.9f, reference %.9f",
							pi, workers, cold, full, sol.Obj, ref.Obj)
					}
					if full && sol.Stats.CandidateHits != 0 {
						t.Fatalf("instance %d workers=%d cold=%v: full pricing recorded %d candidate hits",
							pi, workers, cold, sol.Stats.CandidateHits)
					}
					if sol.Stats.NNZ != ref.Stats.NNZ {
						t.Fatalf("instance %d: NNZ %d vs %d", pi, sol.Stats.NNZ, ref.Stats.NNZ)
					}
					if sol.Stats.PricingSweeps == 0 && sol.Stats.SimplexIters > 0 {
						t.Fatalf("instance %d workers=%d cold=%v full=%v: no pricing sweeps for %d pivots",
							pi, workers, cold, full, sol.Stats.SimplexIters)
					}
				}
			}
		}
	}
}

// TestCandidatePricingReducesSweeps pins the payoff: on a branching-heavy
// instance the candidate list must resolve most pivots without a full sweep.
func TestCandidatePricingReducesSweeps(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	p := lotSizingInstance(rng, 8)
	cand, err := SolveWithOptions(p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	full, err := SolveWithOptions(p, Options{Workers: 1, LP: lp.Options{FullPricing: true}})
	if err != nil {
		t.Fatal(err)
	}
	if cand.Status != StatusOptimal || full.Status != StatusOptimal {
		t.Fatalf("status cand=%v full=%v", cand.Status, full.Status)
	}
	if math.Abs(cand.Obj-full.Obj) > 1e-6 {
		t.Fatalf("objective mismatch: cand %.9f full %.9f", cand.Obj, full.Obj)
	}
	if cand.Stats.CandidateHits == 0 {
		t.Fatalf("candidate list never used: %+v", cand.Stats)
	}
	t.Logf("sweeps: cand %d (hits %d) vs full %d over %d/%d pivots",
		cand.Stats.PricingSweeps, cand.Stats.CandidateHits, full.Stats.PricingSweeps,
		cand.Stats.SimplexIters, full.Stats.SimplexIters)
}
