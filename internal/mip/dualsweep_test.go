package mip

import (
	"math"
	"math/rand"
	"testing"

	"rentplan/internal/lp"
)

// TestDualEtaAgreementSweep is the branch-and-bound-level agreement matrix
// for the dual simplex and its eta-file updates: every corpus instance must
// prove the same optimum across workers {1,4} × dual path {on,off} ×
// pricing {partial,full}. The dual-on runs exercise eta-file ftran/btran
// and its refactorisation triggers on every warm node; the dual-off runs
// are the refactorisation-only control.
func TestDualEtaAgreementSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(1212))
	corpus := []*Problem{
		knapsackInstance(rng, 14),
		knapsackInstance(rng, 18),
		lotSizingInstance(rng, 5),
		lotSizingInstance(rng, 7),
	}
	totalDualNodes := int64(0)
	for pi, p := range corpus {
		ref, err := SolveWithOptions(p, Options{Workers: 1, LP: lp.Options{NoDual: true}})
		if err != nil {
			t.Fatalf("instance %d reference: %v", pi, err)
		}
		if ref.Status != StatusOptimal {
			t.Fatalf("instance %d reference status %v", pi, ref.Status)
		}
		if ref.Stats.WarmDuals != 0 || ref.Stats.DualIters != 0 {
			t.Fatalf("instance %d: NoDual run recorded dual activity: %+v", pi, ref.Stats)
		}
		for _, workers := range []int{1, 4} {
			for _, noDual := range []bool{false, true} {
				for _, fullPricing := range []bool{false, true} {
					sol, err := SolveWithOptions(p, Options{
						Workers: workers,
						LP:      lp.Options{NoDual: noDual, FullPricing: fullPricing},
					})
					if err != nil {
						t.Fatalf("instance %d workers=%d noDual=%v full=%v: %v",
							pi, workers, noDual, fullPricing, err)
					}
					if sol.Status != StatusOptimal {
						t.Fatalf("instance %d workers=%d noDual=%v full=%v: status %v",
							pi, workers, noDual, fullPricing, sol.Status)
					}
					if math.Abs(sol.Obj-ref.Obj) > 1e-6 {
						t.Fatalf("instance %d workers=%d noDual=%v full=%v: obj %.12f, reference %.12f",
							pi, workers, noDual, fullPricing, sol.Obj, ref.Obj)
					}
					checkWarmAccounting(t, sol.Stats)
					if noDual && (sol.Stats.WarmDuals != 0 || sol.Stats.DualIters != 0) {
						t.Fatalf("instance %d workers=%d full=%v: NoDual run recorded dual activity: %+v",
							pi, workers, fullPricing, sol.Stats)
					}
					if sol.Stats.DualIters > sol.Stats.SimplexIters {
						t.Fatalf("instance %d: DualIters %d exceeds SimplexIters %d",
							pi, sol.Stats.DualIters, sol.Stats.SimplexIters)
					}
					if sol.Stats.WarmDuals > 0 && sol.Stats.EtaCount == 0 {
						t.Fatalf("instance %d: %d dual nodes recorded no eta updates",
							pi, sol.Stats.WarmDuals)
					}
					if !noDual {
						totalDualNodes += sol.Stats.WarmDuals
					}
				}
			}
		}
	}
	if totalDualNodes == 0 {
		t.Fatal("the dual path never engaged anywhere in the corpus sweep")
	}
	t.Logf("dual-repaired nodes across the sweep: %d", totalDualNodes)
}
