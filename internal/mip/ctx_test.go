package mip

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"rentplan/internal/lp"
)

// denseMIP builds a feasible all-integer problem whose root relaxation is an
// expensive dense LP: n variables, n coupling rows.
func denseMIP(rng *rand.Rand, n int) *Problem {
	p := &Problem{
		LP: &lp.Problem{
			C:     make([]float64, n),
			Lower: make([]float64, n),
			Upper: make([]float64, n),
		},
		Integer: make([]bool, n),
	}
	for j := 0; j < n; j++ {
		p.LP.C[j] = -(1 + rng.Float64())
		p.LP.Upper[j] = 1
		p.Integer[j] = true
	}
	for i := 0; i < n; i++ {
		row := make([]float64, n)
		s := 0.0
		for j := 0; j < n; j++ {
			row[j] = rng.Float64()
			s += row[j]
		}
		p.LP.A = append(p.LP.A, row)
		p.LP.Rel = append(p.LP.Rel, lp.LE)
		p.LP.B = append(p.LP.B, s/3)
	}
	return p
}

// TestTimeLimitBoundsNodeLP is the regression test for the time-limit
// overshoot bug: the deadline used to be checked only between nodes, so a
// solve could not return before its current node LP ran to completion — on a
// problem with an expensive root relaxation the overshoot was the entire
// root LP. The limit is now threaded into every node LP as a context
// deadline, so the recorded Elapsed must come in well under the duration of
// the root relaxation alone. Wall-clock facts come exclusively from
// Stats.Elapsed (the solver's sanctioned clock).
func TestTimeLimitBoundsNodeLP(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	// The instance must be large enough that the root LP dwarfs the worst-case
	// context-expiry latency: on GOMAXPROCS=1 the deadline timer's callback can
	// be starved by the pivot loop until the runtime's ~10ms async preemption
	// tick, so the root-LP floor needs a wide margin above that.
	p := denseMIP(rng, 230)
	// Root relaxation time: one node, no time limit.
	root, err := SolveWithOptions(p, Options{MaxNodes: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rootElapsed := root.Stats.Elapsed
	if rootElapsed < 30*time.Millisecond {
		t.Skipf("root LP too fast to measure overshoot robustly (%v)", rootElapsed)
	}
	limit := rootElapsed / 10
	sol, err := SolveWithOptions(p, Options{TimeLimit: limit, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == StatusOptimal {
		t.Fatalf("claimed optimality under a %v limit (root LP alone takes %v)", limit, rootElapsed)
	}
	// The old code could not stop before the root LP finished, i.e. its
	// Elapsed was always ≥ rootElapsed. Allow generous scheduling slack but
	// stay strictly below the old lower bound.
	if sol.Stats.Elapsed >= rootElapsed {
		t.Fatalf("time-limited solve took %v, at least the full root LP (%v): the deadline did not reach the node LP",
			sol.Stats.Elapsed, rootElapsed)
	}
}

func TestSolveCtxUpfrontCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := denseMIP(rng, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, err := SolveCtx(ctx, p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusCanceled {
		t.Fatalf("status = %v, want %v", sol.Status, StatusCanceled)
	}
	if sol.X != nil {
		t.Fatalf("canceled-before-start solve exported X")
	}
}

func TestSolveCtxBackgroundMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 5; trial++ {
		p := denseMIP(rng, 10+trial)
		want, err := SolveWithOptions(p, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveCtx(context.Background(), p, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if got.Status != want.Status || got.Obj != want.Obj || got.Nodes != want.Nodes {
			t.Fatalf("trial %d: SolveCtx(Background) = (%v, %v, %d nodes), Solve = (%v, %v, %d nodes)",
				trial, got.Status, got.Obj, got.Nodes, want.Status, want.Obj, want.Nodes)
		}
	}
}

// TestCancellationFuzz drives random MILPs through mid-search cancellation
// and asserts the status contract: a canceled solve never claims optimality
// it cannot prove, its Bound stays a valid lower bound on the true optimum,
// and any exported incumbent is genuinely integer-feasible with an objective
// no better than the true optimum.
func TestCancellationFuzz(t *testing.T) {
	const tol = 1e-6
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := denseMIP(rng, 12+int(seed%5))
		exact, err := SolveWithOptions(p, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if exact.Status != StatusOptimal {
			t.Fatalf("seed %d: exact solve status %v", seed, exact.Status)
		}
		trueOpt := exact.Obj

		// Cancel as soon as the search reports its first incumbent.
		ctx, cancel := context.WithCancel(context.Background())
		sol, err := SolveCtx(ctx, p, Options{
			Workers: 1,
			Progress: func(st Stats) {
				if st.HasIncumbent {
					cancel()
				}
			},
		})
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		switch sol.Status {
		case StatusOptimal:
			// The gap may close before the cancellation lands; the claim
			// must then be genuine.
			if math.Abs(sol.Obj-trueOpt) > tol*(1+math.Abs(trueOpt)) {
				t.Fatalf("seed %d: claimed optimum %v but true optimum is %v", seed, sol.Obj, trueOpt)
			}
		case StatusCanceled:
			if sol.Bound > trueOpt+tol*(1+math.Abs(trueOpt)) {
				t.Fatalf("seed %d: canceled Bound %v exceeds true optimum %v", seed, sol.Bound, trueOpt)
			}
			if sol.X != nil {
				if sol.Obj < trueOpt-tol*(1+math.Abs(trueOpt)) {
					t.Fatalf("seed %d: canceled incumbent %v beats true optimum %v", seed, sol.Obj, trueOpt)
				}
				for j, v := range sol.X {
					if p.Integer[j] && math.Abs(v-math.Round(v)) > 1e-5 {
						t.Fatalf("seed %d: canceled incumbent X[%d]=%v not integral", seed, j, v)
					}
				}
			}
		default:
			t.Fatalf("seed %d: unexpected status %v after cancellation", seed, sol.Status)
		}
	}
}
