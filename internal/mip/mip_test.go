package mip

import (
	"math"
	"math/rand"
	"testing"

	"rentplan/internal/lp"
)

func intSlice(n int, val bool) []bool {
	s := make([]bool, n)
	for i := range s {
		s[i] = val
	}
	return s
}

func TestKnapsack(t *testing.T) {
	// max 10x1+13x2+7x3+11x4 s.t. 3x1+4x2+2x3+3x4 <= 7, x binary.
	// Optimum: x1=0? enumerate: {x2,x4}: w=7 v=24; {x1,x2}: w=7 v=23;
	// {x1,x3,x4}: w=8 infeasible; {x2,x3}: w=6 v=20 +nothing else fits (w=1).
	// {x1,x4}: w=6, v=21, +x3 -> w=8 no. So best 24.
	p := &Problem{
		LP: &lp.Problem{
			C:     []float64{-10, -13, -7, -11},
			A:     [][]float64{{3, 4, 2, 3}},
			Rel:   []lp.Rel{lp.LE},
			B:     []float64{7},
			Upper: []float64{1, 1, 1, 1},
		},
		Integer: intSlice(4, true),
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal {
		t.Fatalf("status %v", sol.Status)
	}
	if math.Abs(sol.Obj-(-24)) > 1e-6 {
		t.Fatalf("obj = %v, want -24 (x=%v)", sol.Obj, sol.X)
	}
}

func TestIntegerInfeasible(t *testing.T) {
	// 2x = 3, x integer, 0<=x<=5: LP feasible (x=1.5) but no integer point.
	p := &Problem{
		LP: &lp.Problem{
			C:     []float64{1},
			A:     [][]float64{{2}},
			Rel:   []lp.Rel{lp.EQ},
			B:     []float64{3},
			Upper: []float64{5},
		},
		Integer: []bool{true},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Fatalf("status %v, want infeasible", sol.Status)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min -x - 2y, x integer in [0,10], y continuous in [0,10],
	// s.t. x + y <= 7.5, x >= 2.2 → x in {3..7}. Optimum x=3, y=4.5: -12.
	p := &Problem{
		LP: &lp.Problem{
			C:     []float64{-1, -2},
			A:     [][]float64{{1, 1}, {1, 0}},
			Rel:   []lp.Rel{lp.LE, lp.GE},
			B:     []float64{7.5, 2.2},
			Upper: []float64{10, 10},
		},
		Integer: []bool{true, false},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.Obj-(-12)) > 1e-6 {
		t.Fatalf("got %v obj=%v x=%v, want obj=-12", sol.Status, sol.Obj, sol.X)
	}
	if math.Abs(sol.X[0]-3) > 1e-6 {
		t.Fatalf("x0 = %v, want 3", sol.X[0])
	}
}

func TestPureLPPassThrough(t *testing.T) {
	p := &Problem{
		LP: &lp.Problem{
			C:   []float64{1, 1},
			A:   [][]float64{{1, 1}},
			Rel: []lp.Rel{lp.GE},
			B:   []float64{3.3},
		},
		Integer: []bool{false, false},
	}
	sol, err := Solve(p)
	if err != nil || sol.Status != StatusOptimal {
		t.Fatalf("%v %v", sol, err)
	}
	if math.Abs(sol.Obj-3.3) > 1e-6 {
		t.Fatalf("obj %v, want 3.3", sol.Obj)
	}
}

func TestUnboundedMILP(t *testing.T) {
	p := &Problem{
		LP: &lp.Problem{
			C:   []float64{-1},
			A:   [][]float64{{0}},
			Rel: []lp.Rel{lp.LE},
			B:   []float64{1},
		},
		Integer: []bool{true},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// An unbounded root relaxation of a pure-integer objective means the
	// MILP itself is unbounded; it must be reported as such, not as
	// infeasible.
	if sol.Status != StatusUnbounded {
		t.Fatalf("status %v, want unbounded: %+v", sol.Status, sol)
	}
	if !math.IsInf(sol.Bound, -1) {
		t.Fatalf("unbounded bound %v, want -Inf", sol.Bound)
	}
}

// bruteForceBinary enumerates all assignments of binary variables and, since
// all test instances have only binary integers, evaluates objective over
// feasible completions by solving the continuous rest exactly (here: no
// continuous vars).
func bruteForceBinary(p *Problem) (float64, bool) {
	n := p.LP.NumVars()
	best := math.Inf(1)
	found := false
	x := make([]float64, n)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			for i, row := range p.LP.A {
				v := 0.0
				for k := range row {
					v += row[k] * x[k]
				}
				switch p.LP.Rel[i] {
				case lp.LE:
					if v > p.LP.B[i]+1e-9 {
						return
					}
				case lp.GE:
					if v < p.LP.B[i]-1e-9 {
						return
					}
				case lp.EQ:
					if math.Abs(v-p.LP.B[i]) > 1e-9 {
						return
					}
				}
			}
			obj := 0.0
			for k, c := range p.LP.C {
				obj += c * x[k]
			}
			if obj < best {
				best = obj
				found = true
			}
			return
		}
		x[j] = 0
		rec(j + 1)
		x[j] = 1
		rec(j + 1)
	}
	rec(0)
	return best, found
}

func TestRandomBinaryVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(8) // up to 10 binaries
		m := 1 + rng.Intn(4)
		p := &Problem{
			LP: &lp.Problem{
				C:     make([]float64, n),
				A:     make([][]float64, m),
				Rel:   make([]lp.Rel, m),
				B:     make([]float64, m),
				Upper: make([]float64, n),
			},
			Integer: intSlice(n, true),
		}
		for j := 0; j < n; j++ {
			p.LP.C[j] = math.Round(rng.NormFloat64()*10) / 2
			p.LP.Upper[j] = 1
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			s := 0.0
			for j := range row {
				row[j] = float64(rng.Intn(7) - 2)
				s += math.Abs(row[j])
			}
			p.LP.A[i] = row
			p.LP.Rel[i] = lp.LE
			p.LP.B[i] = s * (0.2 + 0.6*rng.Float64())
		}
		want, feas := bruteForceBinary(p)
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !feas {
			if sol.Status != StatusInfeasible {
				t.Fatalf("trial %d: want infeasible, got %v", trial, sol.Status)
			}
			continue
		}
		if sol.Status != StatusOptimal {
			t.Fatalf("trial %d: status %v, want optimal (brute=%v)", trial, sol.Status, want)
		}
		if math.Abs(sol.Obj-want) > 1e-6 {
			t.Fatalf("trial %d: obj %v, want %v (x=%v)", trial, sol.Obj, want, sol.X)
		}
	}
}

func TestBranchingRulesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 12; trial++ {
		n := 6
		p := &Problem{
			LP: &lp.Problem{
				C:     make([]float64, n),
				A:     make([][]float64, 2),
				Rel:   []lp.Rel{lp.LE, lp.GE},
				B:     []float64{0, 0},
				Upper: make([]float64, n),
			},
			Integer: intSlice(n, true),
		}
		for j := 0; j < n; j++ {
			p.LP.C[j] = rng.NormFloat64() * 3
			p.LP.Upper[j] = float64(1 + rng.Intn(3))
		}
		for i := 0; i < 2; i++ {
			row := make([]float64, n)
			s := 0.0
			for j := range row {
				row[j] = rng.Float64() * 2
				s += row[j]
			}
			p.LP.A[i] = row
			p.LP.B[i] = s
		}
		p.LP.Rel[1] = lp.LE
		p.LP.B[1] *= 1.5

		var objs []float64
		for _, rule := range []BranchRule{BranchMostFractional, BranchPseudoCost, BranchFirstFractional} {
			sol, err := SolveWithOptions(p, Options{Rule: rule})
			if err != nil || sol.Status != StatusOptimal {
				t.Fatalf("trial %d rule %d: %v %v", trial, rule, sol, err)
			}
			objs = append(objs, sol.Obj)
		}
		for i := 1; i < len(objs); i++ {
			if math.Abs(objs[i]-objs[0]) > 1e-6 {
				t.Fatalf("trial %d: rules disagree: %v", trial, objs)
			}
		}
	}
}

func TestNodeLimit(t *testing.T) {
	// Force an early stop and check the status reflects it.
	rng := rand.New(rand.NewSource(5))
	n := 18
	p := &Problem{
		LP: &lp.Problem{
			C:     make([]float64, n),
			A:     make([][]float64, 1),
			Rel:   []lp.Rel{lp.LE},
			B:     []float64{0},
			Upper: make([]float64, n),
		},
		Integer: intSlice(n, true),
	}
	row := make([]float64, n)
	s := 0.0
	for j := 0; j < n; j++ {
		p.LP.C[j] = -(1 + rng.Float64())
		p.LP.Upper[j] = 1
		row[j] = 1 + rng.Float64()
		s += row[j]
	}
	p.LP.A[0] = row
	p.LP.B[0] = s / 2
	sol, err := SolveWithOptions(p, Options{MaxNodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == StatusInfeasible {
		t.Fatalf("limit run reported infeasible")
	}
	if sol.Nodes > 4 {
		t.Fatalf("node limit not respected: %d", sol.Nodes)
	}
}

func TestValidate(t *testing.T) {
	p := &Problem{LP: &lp.Problem{C: []float64{1}}, Integer: []bool{true, false}}
	if _, err := Solve(p); err == nil {
		t.Fatal("want dimension error")
	}
	if _, err := Solve(&Problem{}); err == nil {
		t.Fatal("want nil LP error")
	}
}

func BenchmarkKnapsack20(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	n := 20
	p := &Problem{
		LP: &lp.Problem{
			C:     make([]float64, n),
			A:     make([][]float64, 1),
			Rel:   []lp.Rel{lp.LE},
			B:     []float64{0},
			Upper: make([]float64, n),
		},
		Integer: intSlice(n, true),
	}
	row := make([]float64, n)
	s := 0.0
	for j := 0; j < n; j++ {
		p.LP.C[j] = -(1 + 10*rng.Float64())
		p.LP.Upper[j] = 1
		row[j] = 1 + 10*rng.Float64()
		s += row[j]
	}
	p.LP.A[0] = row
	p.LP.B[0] = s / 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTimeLimit(t *testing.T) {
	// A zero-headroom time limit must stop the search without claiming
	// optimality on a hard instance.
	rng := rand.New(rand.NewSource(23))
	n := 26
	p := &Problem{
		LP: &lp.Problem{
			C:     make([]float64, n),
			A:     make([][]float64, 2),
			Rel:   []lp.Rel{lp.LE, lp.GE},
			B:     make([]float64, 2),
			Upper: make([]float64, n),
		},
		Integer: intSlice(n, true),
	}
	rows := [][]float64{make([]float64, n), make([]float64, n)}
	s := 0.0
	for j := 0; j < n; j++ {
		p.LP.C[j] = -(1 + rng.Float64())
		p.LP.Upper[j] = 1
		rows[0][j] = 1 + rng.Float64()
		rows[1][j] = rng.Float64()
		s += rows[0][j]
	}
	p.LP.A = rows
	p.LP.B[0] = s / 2
	p.LP.B[1] = 0.1
	sol, err := SolveWithOptions(p, Options{TimeLimit: 1}) // 1ns
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status == StatusOptimal && sol.Nodes > 3 {
		t.Fatalf("claimed optimality after %d nodes under a 1ns limit", sol.Nodes)
	}
}

func TestStatusStrings(t *testing.T) {
	want := map[Status]string{
		StatusOptimal:    "optimal",
		StatusInfeasible: "infeasible",
		StatusUnbounded:  "unbounded",
		StatusFeasible:   "feasible",
		StatusLimit:      "limit",
		StatusTimeLimit:  "time-limit",
		StatusCanceled:   "canceled",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
	if Status(99).String() == "" {
		t.Error("unknown status should still print")
	}
}
