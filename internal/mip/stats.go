package mip

import (
	"math"
	"time"
)

// IncumbentRecord is one point of the incumbent trajectory: a new best
// integer-feasible solution discovered during the search.
type IncumbentRecord struct {
	// Elapsed is the wall time since the solve started.
	Elapsed time.Duration
	// Obj is the incumbent objective value.
	Obj float64
	// Bound is the best proven lower bound at the moment of discovery.
	Bound float64
	// Gap is the relative gap |Obj−Bound| / max(1,|Obj|) at discovery.
	Gap float64
	// Node is the number of nodes solved when the incumbent was found.
	Node int
}

// Stats is a snapshot of branch-and-bound progress. It is delivered to
// Options.Progress during the search and attached, as a final snapshot, to
// every Solution.
type Stats struct {
	// Elapsed is the wall time since the solve started.
	Elapsed time.Duration
	// Nodes is the number of nodes whose relaxation has been solved;
	// NodesPerSec is the throughput over the whole solve so far.
	Nodes       int
	NodesPerSec float64
	// SimplexIters is the total simplex pivots across every node LP.
	SimplexIters int64
	// OpenNodes is the size of the unexplored frontier.
	OpenNodes int
	// Workers is the worker-pool size; WorkerNodes holds the per-worker
	// node counts (index = worker id).
	Workers     int
	WorkerNodes []int
	// HasIncumbent reports whether an integer-feasible point is known;
	// Incumbent is its objective (+Inf when none).
	HasIncumbent bool
	Incumbent    float64
	// Bound is the best proven lower bound on the optimum and Gap the
	// relative gap |Incumbent−Bound| / max(1,|Incumbent|).
	Bound float64
	Gap   float64
	// Incumbents is the incumbent trajectory so far; together with the
	// Bound recorded per entry it traces the gap over time.
	Incumbents []IncumbentRecord

	// Warm-start accounting over node relaxations. Every solved node falls
	// into exactly one class — WarmHits + WarmMisses + WarmDuals +
	// WarmFallbacks + ColdNodes == Nodes — so the per-node simplex-iteration
	// averages WarmIters/(WarmHits+WarmMisses+WarmDuals+WarmFallbacks) and
	// ColdIters/ColdNodes expose the warm-start saving directly.
	//
	// WarmHits counts nodes whose inherited basis was feasible as-is (phase 1
	// skipped outright), WarmMisses nodes that needed the restricted primal
	// bound repair first, WarmDuals nodes whose dual-feasible basis was
	// repaired by the dual simplex, and WarmFallbacks nodes where the warm
	// attempt was abandoned for the cold path. ColdNodes counts nodes
	// dispatched cold from the start: the root, and every node when
	// Options.NoWarmStart is set. WarmIters and ColdIters split SimplexIters
	// along the same line.
	WarmHits      int64
	WarmMisses    int64
	WarmDuals     int64
	WarmFallbacks int64
	WarmIters     int64
	ColdNodes     int64
	ColdIters     int64

	// Sparse-pricing accounting over node relaxations. PricingSweeps is the
	// total number of full pricing sweeps (every column priced) across all
	// node LPs, and CandidateHits the pivots whose entering column came from
	// the candidate list without a sweep — under lp.Options.FullPricing the
	// sweep count equals the pivot count and CandidateHits stays zero, so
	// the pair exposes the partial-pricing saving directly. NNZ is the
	// structural nonzero count of the constraint matrix, constant across
	// the solve.
	PricingSweeps int64
	CandidateHits int64
	NNZ           int

	// Dual-simplex and eta-file accounting aggregated from the node LPs.
	// DualIters is the subset of SimplexIters performed by the dual simplex
	// on WarmDuals nodes, EtaCount the product-form eta updates recorded
	// between refactorisations, and Refactorizations the total basis
	// refactorisations (periodic primal refreshes, post-eviction refreshes,
	// and dual eta-stack collapses).
	DualIters        int64
	EtaCount         int64
	Refactorizations int64
}

// relGap returns |obj−bound| / max(1,|obj|), or +Inf when either side is
// still unknown (infinite).
func relGap(obj, bound float64) float64 {
	if math.IsInf(obj, 0) || math.IsInf(bound, 0) {
		return math.Inf(1)
	}
	return math.Abs(obj-bound) / math.Max(1, math.Abs(obj))
}
