package spec

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"rentplan/internal/core"
	"rentplan/internal/market"
)

const drrpJSON = `{
  "model": "drrp",
  "class": "m1.large",
  "epsilon": 0.5,
  "demand": [0.4, 0.3, 0.5, 0.2, 0.6, 0.4]
}`

const srrpJSON = `{
  "model": "srrp",
  "class": "c1.medium",
  "demand": [0.4, 0.4, 0.4],
  "srrp": {
    "stages": 2,
    "bid": 0.060,
    "rootPrice": 0.059,
    "baseValues": [0.056, 0.058, 0.060, 0.062, 0.064],
    "baseProbs": [0.1, 0.2, 0.4, 0.2, 0.1],
    "maxBranch": 3
  }
}`

func TestParseAndSolveDRRP(t *testing.T) {
	ins, err := Parse(strings.NewReader(drrpJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ins.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Must equal the core solver on the same data.
	par := core.DefaultParams(market.M1Large)
	par.Epsilon = 0.5
	lambda, _ := par.OnDemandRate()
	prices := []float64{lambda, lambda, lambda, lambda, lambda, lambda}
	want, err := core.SolveDRRP(par, prices, ins.Demand)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Cost-want.Cost) > 1e-9 {
		t.Fatalf("spec solve %v != core %v", res.Cost, want.Cost)
	}
	if len(res.Alpha) != 6 || len(res.Chi) != 6 {
		t.Fatalf("plan slices missing: %+v", res)
	}
	if math.Abs(res.Compute+res.Holding+res.Transfer-res.Cost) > 1e-9 {
		t.Fatal("breakdown mismatch")
	}
}

func TestParseAndSolveSRRP(t *testing.T) {
	ins, err := Parse(strings.NewReader(srrpJSON))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ins.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if res.RootRent == nil || res.RootAlpha == nil {
		t.Fatalf("missing root decision: %+v", res)
	}
	if res.TreeVertices != 1+3+9 {
		t.Fatalf("tree vertices %d", res.TreeVertices)
	}
	if res.Cost <= 0 {
		t.Fatalf("cost %v", res.Cost)
	}
}

func TestRoundTrip(t *testing.T) {
	ins, err := Parse(strings.NewReader(srrpJSON))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ins.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := ins.Solve()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := back.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r1.Cost-r2.Cost) > 1e-12 {
		t.Fatalf("round trip changed the instance: %v vs %v", r1.Cost, r2.Cost)
	}
}

func TestCapacitatedSpec(t *testing.T) {
	in := `{
	  "model": "drrp",
	  "class": "c1.medium",
	  "demand": [0.4, 0.5, 0.3, 0.6],
	  "capacity": [0.7, 0.7, 0.7, 0.7]
	}`
	ins, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ins.Solve()
	if err != nil {
		t.Fatal(err)
	}
	for t0, a := range res.Alpha {
		if a > 0.7+1e-6 {
			t.Fatalf("capacity violated at %d: %v", t0, a)
		}
	}
}

func TestParseRejectsBadInstances(t *testing.T) {
	cases := []string{
		`{`, // malformed JSON
		`{"model":"xxx","class":"c1.medium","demand":[1]}`,
		`{"model":"drrp","class":"c1.medium","demand":[]}`,
		`{"model":"drrp","class":"c1.medium","demand":[-1]}`,
		`{"model":"drrp","class":"nope","demand":[1]}`,
		`{"model":"drrp","class":"c1.medium","demand":[1],"prices":[1,2]}`,
		`{"model":"drrp","class":"c1.medium","demand":[1,1],"capacity":[1]}`,
		`{"model":"drrp","class":"c1.medium","demand":[1],"epsilon":-1}`,
		`{"model":"drrp","class":"c1.medium","demand":[1],"phi":-1}`,
		`{"model":"drrp","class":"c1.medium","demand":[1],"srrp":{"stages":1,"bid":1,"rootPrice":1,"baseValues":[1]}}`,
		`{"model":"srrp","class":"c1.medium","demand":[1,1]}`,
		`{"model":"srrp","class":"c1.medium","demand":[1,1],"srrp":{"stages":0,"bid":1,"rootPrice":1,"baseValues":[1]}}`,
		`{"model":"srrp","class":"c1.medium","demand":[1,1,1],"srrp":{"stages":1,"bid":1,"rootPrice":1,"baseValues":[1]}}`,
		`{"model":"srrp","class":"c1.medium","demand":[1,1],"srrp":{"stages":1,"bid":1,"rootPrice":0,"baseValues":[1]}}`,
		`{"model":"srrp","class":"c1.medium","demand":[1,1],"srrp":{"stages":1,"bid":1,"rootPrice":1,"baseValues":[]}}`,
		`{"model":"srrp","class":"c1.medium","demand":[1,1],"srrp":{"stages":1,"bid":1,"rootPrice":1,"baseValues":[1],"baseProbs":[0.5,0.5]}}`,
		`{"model":"srrp","class":"c1.medium","demand":[1,1],"srrp":{"stages":1,"rootPrice":1,"baseValues":[1]}}`,
		`{"model":"srrp","class":"c1.medium","demand":[1,1],"srrp":{"stages":1,"bids":[1,2],"rootPrice":1,"baseValues":[1]}}`,
		`{"model":"drrp","class":"c1.medium","demand":[1],"bogusField":1}`,
	}
	for i, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: want parse/validation error for %s", i, in)
		}
	}
}

func TestUniformBaseProbsDefault(t *testing.T) {
	in := `{
	  "model": "srrp",
	  "class": "c1.medium",
	  "demand": [0.4, 0.4],
	  "srrp": {"stages": 1, "bid": 1.0, "rootPrice": 0.06,
	           "baseValues": [0.05, 0.06, 0.07]}
	}`
	ins, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ins.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Bid above all values: 3 kept states, no OOB → 1 + 3 vertices.
	if res.TreeVertices != 4 {
		t.Fatalf("vertices %d", res.TreeVertices)
	}
}
