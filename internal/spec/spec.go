// Package spec defines the JSON instance format consumed by cmd/rentplan:
// a self-contained description of a planning problem (class, cost
// parameters, demand, prices or spot-market configuration) that can be
// checked, solved, and round-tripped. It decouples the CLI surface from the
// core API so instances can be version-controlled and shared.
package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"rentplan/internal/core"
	"rentplan/internal/market"
	"rentplan/internal/scenario"
	"rentplan/internal/stats"
)

// Instance is the top-level JSON document.
type Instance struct {
	// Model selects "drrp" or "srrp".
	Model string `json:"model"`
	// Class is the VM class name (e.g. "c1.medium").
	Class string `json:"class"`
	// Phi is the input-output ratio Φ (default 0.5 when omitted).
	Phi *float64 `json:"phi,omitempty"`
	// Epsilon is the initial storage ε in GB.
	Epsilon float64 `json:"epsilon,omitempty"`
	// Demand is the per-slot demand in GB. For SRRP its length must be
	// Stages+1 (slot 0 is the current stage).
	Demand []float64 `json:"demand"`
	// Prices is the per-slot rental price for DRRP. Omitted → the class's
	// on-demand rate in every slot.
	Prices []float64 `json:"prices,omitempty"`
	// Capacity activates the bottleneck constraint (3) when present, with
	// ConsumptionRate defaulting to 1.
	Capacity        []float64 `json:"capacity,omitempty"`
	ConsumptionRate float64   `json:"consumptionRate,omitempty"`

	// SRRP-only fields.
	Srrp *SrrpSpec `json:"srrp,omitempty"`
}

// SrrpSpec configures the stochastic model.
type SrrpSpec struct {
	// Stages is the number of future stages.
	Stages int `json:"stages"`
	// Bid is the (constant) bid price; Bids overrides it per stage.
	Bid  float64   `json:"bid,omitempty"`
	Bids []float64 `json:"bids,omitempty"`
	// RootPrice is the known current spot price.
	RootPrice float64 `json:"rootPrice"`
	// BaseValues/BaseProbs give the summarised historical distribution; if
	// BaseProbs is omitted, values are weighted uniformly.
	BaseValues []float64 `json:"baseValues"`
	BaseProbs  []float64 `json:"baseProbs,omitempty"`
	// MaxBranch caps the tree branching (0 = uncapped).
	MaxBranch int `json:"maxBranch,omitempty"`
}

// Parse decodes and validates an instance from JSON.
func Parse(r io.Reader) (*Instance, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var ins Instance
	if err := dec.Decode(&ins); err != nil {
		return nil, fmt.Errorf("spec: %w", err)
	}
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	return &ins, nil
}

// Validate checks structural consistency without solving.
func (ins *Instance) Validate() error {
	switch ins.Model {
	case "drrp", "srrp":
	default:
		return fmt.Errorf("spec: model %q (want drrp or srrp)", ins.Model)
	}
	if len(ins.Demand) == 0 {
		return errors.New("spec: empty demand")
	}
	for i, d := range ins.Demand {
		if d < 0 {
			return fmt.Errorf("spec: negative demand at slot %d", i)
		}
	}
	if ins.Phi != nil && *ins.Phi < 0 {
		return errors.New("spec: negative phi")
	}
	if ins.Epsilon < 0 {
		return errors.New("spec: negative epsilon")
	}
	par := ins.params()
	if _, err := par.OnDemandRate(); err != nil {
		return fmt.Errorf("spec: unknown class %q", ins.Class)
	}
	if ins.Prices != nil && len(ins.Prices) != len(ins.Demand) {
		return fmt.Errorf("spec: %d prices for %d demand slots", len(ins.Prices), len(ins.Demand))
	}
	if ins.Capacity != nil && len(ins.Capacity) < len(ins.Demand) {
		return fmt.Errorf("spec: capacity series shorter than demand")
	}
	switch ins.Model {
	case "drrp":
		if ins.Srrp != nil {
			return errors.New("spec: srrp block present on a drrp instance")
		}
	case "srrp":
		s := ins.Srrp
		if s == nil {
			return errors.New("spec: srrp model needs an srrp block")
		}
		if s.Stages <= 0 {
			return errors.New("spec: srrp.stages must be positive")
		}
		if len(ins.Demand) != s.Stages+1 {
			return fmt.Errorf("spec: srrp wants %d demand slots (stages+1), got %d", s.Stages+1, len(ins.Demand))
		}
		if s.RootPrice <= 0 {
			return errors.New("spec: srrp.rootPrice must be positive")
		}
		if len(s.BaseValues) == 0 {
			return errors.New("spec: srrp.baseValues empty")
		}
		if s.BaseProbs != nil && len(s.BaseProbs) != len(s.BaseValues) {
			return errors.New("spec: baseProbs/baseValues length mismatch")
		}
		if len(s.Bids) > 0 && len(s.Bids) != s.Stages {
			return fmt.Errorf("spec: %d bids for %d stages", len(s.Bids), s.Stages)
		}
		if len(s.Bids) == 0 && s.Bid <= 0 {
			return errors.New("spec: srrp needs bid or bids")
		}
	}
	return nil
}

func (ins *Instance) params() core.Params {
	par := core.DefaultParams(market.VMClass(ins.Class))
	if ins.Phi != nil {
		par.Phi = *ins.Phi
	}
	par.Epsilon = ins.Epsilon
	if ins.Capacity != nil {
		par.Capacity = ins.Capacity
		par.ConsumptionRate = ins.ConsumptionRate
		if par.ConsumptionRate == 0 { //lint:ignore rentlint/floatcmp zero is the unset-default sentinel of the instance spec, never a computed result
			par.ConsumptionRate = 1
		}
	}
	return par
}

// Result is the solver output in a JSON-friendly shape.
type Result struct {
	Model string `json:"model"`
	Class string `json:"class"`
	// Cost is the (expected) optimal objective.
	Cost float64 `json:"cost"`
	// Breakdown components.
	Compute  float64 `json:"compute"`
	Holding  float64 `json:"holding"`
	Transfer float64 `json:"transfer"`
	// DRRP plan (per slot) or SRRP root decision.
	Alpha []float64 `json:"alpha,omitempty"`
	Chi   []bool    `json:"chi,omitempty"`
	Beta  []float64 `json:"beta,omitempty"`

	RootRent     *bool    `json:"rootRent,omitempty"`
	RootAlpha    *float64 `json:"rootAlpha,omitempty"`
	TreeVertices int      `json:"treeVertices,omitempty"`
}

// Solve runs the described instance.
func (ins *Instance) Solve() (*Result, error) {
	if err := ins.Validate(); err != nil {
		return nil, err
	}
	par := ins.params()
	switch ins.Model {
	case "drrp":
		prices := ins.Prices
		if prices == nil {
			lambda, err := par.OnDemandRate()
			if err != nil {
				return nil, err
			}
			prices = make([]float64, len(ins.Demand))
			for t := range prices {
				prices[t] = lambda
			}
		}
		plan, err := core.SolveDRRP(par, prices, ins.Demand)
		if err != nil {
			return nil, err
		}
		return &Result{
			Model: ins.Model, Class: ins.Class,
			Cost:     plan.Cost,
			Compute:  plan.Breakdown.Compute,
			Holding:  plan.Breakdown.Holding,
			Transfer: plan.Breakdown.Transfer(),
			Alpha:    plan.Alpha, Chi: plan.Chi, Beta: plan.Beta,
		}, nil
	case "srrp":
		s := ins.Srrp
		probs := s.BaseProbs
		if probs == nil {
			probs = make([]float64, len(s.BaseValues))
			for i := range probs {
				probs[i] = 1 / float64(len(s.BaseValues))
			}
		}
		base := stats.Discrete{Values: append([]float64(nil), s.BaseValues...), Probs: probs}
		bids := s.Bids
		if len(bids) == 0 {
			bids = make([]float64, s.Stages)
			for i := range bids {
				bids[i] = s.Bid
			}
		}
		lambda, err := par.OnDemandRate()
		if err != nil {
			return nil, err
		}
		tree, err := scenario.Build(base, bids, lambda, scenario.BuildConfig{
			Stages:    s.Stages,
			MaxBranch: s.MaxBranch,
			RootPrice: s.RootPrice,
		})
		if err != nil {
			return nil, err
		}
		plan, err := core.SolveSRRP(par, tree, ins.Demand)
		if err != nil {
			return nil, err
		}
		rr, ra := plan.RootRent, plan.RootAlpha
		return &Result{
			Model: ins.Model, Class: ins.Class,
			Cost:     plan.ExpCost,
			Compute:  plan.Breakdown.Compute,
			Holding:  plan.Breakdown.Holding,
			Transfer: plan.Breakdown.Transfer(),
			RootRent: &rr, RootAlpha: &ra,
			TreeVertices: tree.N(),
		}, nil
	}
	return nil, fmt.Errorf("spec: model %q", ins.Model)
}

// Write serialises the instance as indented JSON.
func (ins *Instance) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ins)
}
