package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-12 {
		t.Fatalf("mean %v", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7) > 1e-12 {
		t.Fatalf("variance %v", v)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("degenerate inputs should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {0.75, 3.25},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestBoxWhisker(t *testing.T) {
	// 10 regular points plus 2 extreme outliers.
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 100, -100}
	f := BoxWhisker(xs)
	if len(f.Outliers) != 2 {
		t.Fatalf("outliers = %v, want 2", f.Outliers)
	}
	if f.OutlierFrac() != 2.0/12 {
		t.Fatalf("frac %v", f.OutlierFrac())
	}
	if f.Min != -100 || f.Max != 100 {
		t.Fatalf("min/max wrong: %+v", f)
	}
	if f.WhiskerLo != 1 || f.WhiskerHi != 10 {
		t.Fatalf("whiskers: %+v", f)
	}
	trimmed := TrimOutliers(xs)
	if len(trimmed) != 10 {
		t.Fatalf("trimmed %v", trimmed)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0, 0.1, 0.2, 0.9, 1.0}
	h, err := NewHistogram(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 3 || h.Counts[1] != 2 {
		t.Fatalf("counts %v", h.Counts)
	}
	// Density integrates to 1.
	s := 0.0
	for i := range h.Counts {
		s += h.Density(i) * h.Width
	}
	if math.Abs(s-1) > 1e-12 {
		t.Fatalf("density integral %v", s)
	}
	if _, err := NewHistogram(nil, 3); err == nil {
		t.Fatal("want error for empty sample")
	}
	if _, err := NewHistogram(xs, 0); err == nil {
		t.Fatal("want error for zero bins")
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := NewRNG(1)
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	at := make([]float64, 801)
	for i := range at {
		at[i] = -8 + float64(i)*0.02
	}
	dens := KDE(xs, at, 0)
	integral := 0.0
	for _, d := range dens {
		integral += d * 0.02
	}
	if math.Abs(integral-1) > 0.02 {
		t.Fatalf("KDE integral %v", integral)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999, 1 - 1e-10} {
		z := NormalQuantile(p)
		if got := NormalCDF(z); math.Abs(got-p) > 1e-9 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Fatal("boundary quantiles should be infinite")
	}
	// Spot values against tables.
	if z := NormalQuantile(0.975); math.Abs(z-1.959964) > 1e-5 {
		t.Fatalf("z(0.975) = %v", z)
	}
}

func TestShapiroWilkNormalSample(t *testing.T) {
	rng := NewRNG(7)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 3 + 2*rng.NormFloat64()
	}
	r, err := ShapiroWilk(xs)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stat < 0.97 {
		t.Fatalf("W = %v for normal data", r.Stat)
	}
	if r.Rejects(0.01) {
		t.Fatalf("normal data rejected: %+v", r)
	}
}

func TestShapiroWilkSkewedSample(t *testing.T) {
	rng := NewRNG(8)
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = math.Exp(rng.NormFloat64()) // lognormal: far from normal
	}
	r, err := ShapiroWilk(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rejects(0.001) {
		t.Fatalf("lognormal data not rejected: %+v", r)
	}
}

func TestShapiroWilkBimodal(t *testing.T) {
	// Two well-separated clusters, as a spot-price window often shows.
	rng := NewRNG(9)
	xs := make([]float64, 300)
	for i := range xs {
		c := 0.057
		if i%2 == 0 {
			c = 0.063
		}
		xs[i] = c + 0.0004*rng.NormFloat64()
	}
	r, err := ShapiroWilk(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Rejects(0.01) {
		t.Fatalf("bimodal data not rejected: %+v", r)
	}
}

func TestShapiroWilkErrors(t *testing.T) {
	if _, err := ShapiroWilk([]float64{1, 2}); err == nil {
		t.Fatal("want n>=3 error")
	}
	if _, err := ShapiroWilk([]float64{5, 5, 5, 5}); err == nil {
		t.Fatal("want zero-range error")
	}
	if _, err := ShapiroWilk(make([]float64, 5001)); err == nil {
		t.Fatal("want n<=5000 error")
	}
}

func TestShapiroWilkSmallN(t *testing.T) {
	// n in the small-sample branch (3..11).
	xs := []float64{148, 154, 158, 160, 161, 162, 166, 170, 182, 195, 236}
	r, err := ShapiroWilk(xs)
	if err != nil {
		t.Fatal(err)
	}
	// The heavy 236 outlier makes this sample clearly non-normal: W must be
	// depressed well below typical normal-sample values and p small.
	if r.Stat < 0.70 || r.Stat > 0.88 {
		t.Fatalf("W = %v, want ≈0.8 for this skewed sample", r.Stat)
	}
	if !r.Rejects(0.05) {
		t.Fatalf("skewed small sample not rejected: %+v", r)
	}
}

func TestJarqueBera(t *testing.T) {
	rng := NewRNG(10)
	normal := make([]float64, 500)
	skewed := make([]float64, 500)
	for i := range normal {
		normal[i] = rng.NormFloat64()
		skewed[i] = math.Exp(rng.NormFloat64())
	}
	rn, err := JarqueBera(normal)
	if err != nil {
		t.Fatal(err)
	}
	if rn.Rejects(0.01) {
		t.Fatalf("JB rejected normal data: %+v", rn)
	}
	rs, err := JarqueBera(skewed)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Rejects(0.001) {
		t.Fatalf("JB accepted lognormal data: %+v", rs)
	}
	if _, err := JarqueBera([]float64{1, 2, 3}); err == nil {
		t.Fatal("want n>=8 error")
	}
}

func TestTruncNormalBounds(t *testing.T) {
	rng := NewRNG(3)
	for i := 0; i < 2000; i++ {
		x := TruncNormal(rng, 0.4, 0.2, 0, 1)
		if x < 0 || x > 1 {
			t.Fatalf("out of bounds: %v", x)
		}
	}
	// Far-tail interval exercises the inverse-CDF fallback.
	for i := 0; i < 50; i++ {
		x := TruncNormal(rng, 0, 1, 8, 9)
		if x < 8 || x > 9 {
			t.Fatalf("tail sample out of bounds: %v", x)
		}
	}
	if x := TruncNormal(rng, 5, 0, 0, 1); x != 1 {
		t.Fatalf("sigma=0 should clamp: %v", x)
	}
}

func TestPositiveNormalAlwaysPositive(t *testing.T) {
	rng := NewRNG(4)
	for i := 0; i < 5000; i++ {
		if x := PositiveNormal(rng, 0.4, 0.2); x <= 0 {
			t.Fatalf("non-positive draw %v", x)
		}
	}
}

func TestDiscreteFromSamples(t *testing.T) {
	xs := []float64{0.06, 0.06, 0.057, 0.063, 0.06}
	d := NewDiscreteFromSamples(xs, 1e-4)
	if d.Len() != 3 {
		t.Fatalf("support %v", d.Values)
	}
	if math.Abs(d.TotalMass()-1) > 1e-12 {
		t.Fatalf("mass %v", d.TotalMass())
	}
	if math.Abs(d.CDF(0.0601)-0.8) > 1e-12 {
		t.Fatalf("cdf %v", d.CDF(0.0601))
	}
	want := (0.06*3 + 0.057 + 0.063) / 5
	if math.Abs(d.Mean()-want) > 1e-12 {
		t.Fatalf("mean %v want %v", d.Mean(), want)
	}
	// Values must be sorted ascending.
	for i := 1; i < d.Len(); i++ {
		if d.Values[i] < d.Values[i-1] {
			t.Fatalf("unsorted support %v", d.Values)
		}
	}
}

func TestDiscreteTruncate(t *testing.T) {
	d := Discrete{Values: []float64{1, 2, 3, 4}, Probs: []float64{0.1, 0.2, 0.3, 0.4}}
	kept, tail := d.Truncate(2.5)
	if kept.Len() != 2 || math.Abs(tail-0.7) > 1e-12 {
		t.Fatalf("kept=%v tail=%v", kept, tail)
	}
	kept, tail = d.Truncate(0.5)
	if kept.Len() != 0 || math.Abs(tail-1) > 1e-12 {
		t.Fatalf("full truncation: kept=%v tail=%v", kept, tail)
	}
}

func TestDiscreteSampleDistribution(t *testing.T) {
	d := Discrete{Values: []float64{10, 20}, Probs: []float64{0.25, 0.75}}
	rng := NewRNG(12)
	c := 0
	n := 20000
	for i := 0; i < n; i++ {
		if d.Sample(rng) == 10 {
			c++
		}
	}
	frac := float64(c) / float64(n)
	if math.Abs(frac-0.25) > 0.02 {
		t.Fatalf("sample frac %v", frac)
	}
}

func TestDiscreteAggregate(t *testing.T) {
	d := Discrete{
		Values: []float64{1, 2, 3, 4, 5, 6},
		Probs:  []float64{1. / 6, 1. / 6, 1. / 6, 1. / 6, 1. / 6, 1. / 6},
	}
	g := d.Aggregate(3)
	if g.Len() != 3 {
		t.Fatalf("aggregated support %v", g.Values)
	}
	if math.Abs(g.TotalMass()-1) > 1e-12 {
		t.Fatalf("mass %v", g.TotalMass())
	}
	if math.Abs(g.Mean()-d.Mean()) > 1e-12 {
		t.Fatalf("aggregation must preserve mean: %v vs %v", g.Mean(), d.Mean())
	}
	// k >= support size returns a copy.
	same := d.Aggregate(10)
	if same.Len() != d.Len() {
		t.Fatalf("no-op aggregate changed support")
	}
}

func TestQuickDiscreteMassPreserved(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			xs[i] = math.Mod(v, 100)
		}
		d := NewDiscreteFromSamples(xs, 1e-6)
		if math.Abs(d.TotalMass()-1) > 1e-9 {
			return false
		}
		g := d.Aggregate(4)
		return math.Abs(g.TotalMass()-1) < 1e-9 && g.Len() <= 4 &&
			math.Abs(g.Mean()-d.Mean()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSkewnessKurtosis(t *testing.T) {
	// Symmetric data: skew ~ 0; uniform has negative excess kurtosis.
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = float64(i)
	}
	if s := Skewness(xs); math.Abs(s) > 1e-9 {
		t.Fatalf("skew %v", s)
	}
	if k := Kurtosis(xs); k > -1 || k < -1.3 {
		t.Fatalf("uniform kurtosis %v, want ≈ -1.2", k)
	}
}

func TestDiscreteFromLargeSample(t *testing.T) {
	// More than 64 distinct values exercises the quicksort path.
	rng := NewRNG(99)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	d := NewDiscreteFromSamples(xs, 0)
	if d.Len() < 100 {
		t.Fatalf("support %d", d.Len())
	}
	for i := 1; i < d.Len(); i++ {
		if d.Values[i] < d.Values[i-1] {
			t.Fatal("unsorted support")
		}
	}
	if math.Abs(d.TotalMass()-1) > 1e-9 {
		t.Fatalf("mass %v", d.TotalMass())
	}
}

func TestHistogramBinCenterAndNormalPDF(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2, 3, 4}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.BinCenter(0)-0.5) > 1e-12 {
		t.Fatalf("bin center %v", h.BinCenter(0))
	}
	if math.Abs(NormalPDF(0)-1/math.Sqrt(2*math.Pi)) > 1e-12 {
		t.Fatalf("pdf(0) = %v", NormalPDF(0))
	}
}
