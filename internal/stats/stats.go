// Package stats provides the statistical primitives used by the price
// analysis and planning code: summary statistics, quantiles and
// box-and-whisker outlier detection, histograms, kernel density estimation,
// normality tests (Shapiro–Wilk, Jarque–Bera), the normal distribution and
// its inverse, truncated-normal sampling, and empirical discrete
// distributions.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Skewness returns the sample skewness (biased, moment-based).
func Skewness(xs []float64) float64 {
	n := float64(len(xs))
	if n < 3 {
		return math.NaN()
	}
	m := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if m2 == 0 { //lint:ignore rentlint/floatcmp division guard: only an exactly-zero central moment makes the ratio undefined
		return 0
	}
	return m3 / math.Pow(m2, 1.5)
}

// Kurtosis returns the sample excess kurtosis (biased, moment-based).
func Kurtosis(xs []float64) float64 {
	n := float64(len(xs))
	if n < 4 {
		return math.NaN()
	}
	m := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m4 += d * d * d * d
	}
	m2 /= n
	m4 /= n
	if m2 == 0 { //lint:ignore rentlint/floatcmp division guard: only an exactly-zero central moment makes the ratio undefined
		return 0
	}
	return m4/(m2*m2) - 3
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (R type-7, the R default).
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[n-1]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return s[n-1]
	}
	frac := h - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// FiveNum is a box-and-whisker summary of a sample.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
	// WhiskerLo and WhiskerHi are the most extreme points within
	// 1.5·IQR of the quartiles (the whisker ends).
	WhiskerLo, WhiskerHi float64
	// Outliers are points beyond the whiskers, sorted ascending.
	Outliers []float64
	// N is the sample size.
	N int
}

// OutlierFrac returns the fraction of points flagged as outliers.
func (f FiveNum) OutlierFrac() float64 {
	if f.N == 0 {
		return 0
	}
	return float64(len(f.Outliers)) / float64(f.N)
}

// BoxWhisker computes the five-number summary with 1.5·IQR whiskers, the
// rule the paper uses in Fig. 3 to flag spot-price outliers.
func BoxWhisker(xs []float64) FiveNum {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n == 0 {
		return FiveNum{}
	}
	f := FiveNum{
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[n-1],
		N:      n,
	}
	iqr := f.Q3 - f.Q1
	loFence := f.Q1 - 1.5*iqr
	hiFence := f.Q3 + 1.5*iqr
	f.WhiskerLo, f.WhiskerHi = f.Max, f.Min
	for _, x := range s {
		if x < loFence || x > hiFence {
			f.Outliers = append(f.Outliers, x)
			continue
		}
		if x < f.WhiskerLo {
			f.WhiskerLo = x
		}
		if x > f.WhiskerHi {
			f.WhiskerHi = x
		}
	}
	return f
}

// TrimOutliers returns xs without the 1.5·IQR outliers (order preserved).
func TrimOutliers(xs []float64) []float64 {
	f := BoxWhisker(xs)
	iqr := f.Q3 - f.Q1
	lo, hi := f.Q1-1.5*iqr, f.Q3+1.5*iqr
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x >= lo && x <= hi {
			out = append(out, x)
		}
	}
	return out
}

// Histogram is a fixed-width binned frequency count.
type Histogram struct {
	Lo, Hi float64
	Width  float64
	Counts []int
	N      int
}

// NewHistogram bins xs into the given number of equal-width bins spanning
// [min, max]. bins must be ≥ 1.
func NewHistogram(xs []float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, errors.New("stats: bins must be >= 1")
	}
	if len(xs) == 0 {
		return nil, errors.New("stats: empty sample")
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if hi == lo { //lint:ignore rentlint/floatcmp degenerate-range check: min and max are copied sample values, equal only for a constant sample
		hi = lo + 1e-12
	}
	h := &Histogram{Lo: lo, Hi: hi, Width: (hi - lo) / float64(bins), Counts: make([]int, bins), N: len(xs)}
	for _, x := range xs {
		b := int((x - lo) / h.Width)
		if b >= bins {
			b = bins - 1
		}
		if b < 0 {
			b = 0
		}
		h.Counts[b]++
	}
	return h, nil
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 { return h.Lo + (float64(i)+0.5)*h.Width }

// Density returns the estimated probability density in bin i.
func (h *Histogram) Density(i int) float64 {
	return float64(h.Counts[i]) / (float64(h.N) * h.Width)
}

// KDE evaluates a Gaussian kernel density estimate of xs at each point in
// at, using Silverman's rule-of-thumb bandwidth when bw ≤ 0.
func KDE(xs []float64, at []float64, bw float64) []float64 {
	n := len(xs)
	if n == 0 {
		return make([]float64, len(at))
	}
	if bw <= 0 {
		sd := StdDev(xs)
		iqr := Quantile(xs, 0.75) - Quantile(xs, 0.25)
		a := sd
		if iqr > 0 && iqr/1.34 < a {
			a = iqr / 1.34
		}
		if a <= 0 {
			a = 1e-9
		}
		bw = 0.9 * a * math.Pow(float64(n), -0.2)
	}
	out := make([]float64, len(at))
	inv := 1 / (bw * math.Sqrt(2*math.Pi) * float64(n))
	for i, p := range at {
		s := 0.0
		for _, x := range xs {
			z := (p - x) / bw
			s += math.Exp(-0.5 * z * z)
		}
		out[i] = s * inv
	}
	return out
}

// NormalCDF is Φ(z), the standard normal cumulative distribution function.
func NormalCDF(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }

// NormalPDF is φ(z), the standard normal density.
func NormalPDF(z float64) float64 { return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi) }

// NormalQuantile is Φ⁻¹(p) via Acklam's rational approximation, refined by
// one Halley step; accurate to ~1e-15 over (0,1).
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00
		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01
		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00
		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00
	)
	const pLow, pHigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}
