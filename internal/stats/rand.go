package stats

import (
	"math"
	"math/rand"
)

// NewRNG returns a deterministic random source for reproducible simulations.
func NewRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// TruncNormal draws from N(mu, sigma²) truncated to [lo, hi] by rejection
// with an interval-inversion fallback for far tails.
func TruncNormal(rng *rand.Rand, mu, sigma, lo, hi float64) float64 {
	if lo >= hi {
		return lo
	}
	if sigma <= 0 {
		return math.Min(math.Max(mu, lo), hi)
	}
	// Rejection sampling is cheap when the interval carries real mass.
	for i := 0; i < 64; i++ {
		x := mu + sigma*rng.NormFloat64()
		if x >= lo && x <= hi {
			return x
		}
	}
	// Inverse-CDF sampling over the truncated interval.
	a := NormalCDF((lo - mu) / sigma)
	b := NormalCDF((hi - mu) / sigma)
	u := a + rng.Float64()*(b-a)
	x := mu + sigma*NormalQuantile(u)
	// Far tails exhaust float precision in the CDF; clamp to the interval.
	return math.Min(math.Max(x, lo), hi)
}

// PositiveNormal draws from N(mu, sigma²) truncated to (0, ∞). This matches
// the paper's demand process: "sampled from a normal distribution N(0.4,0.2)
// ... and is always positive".
func PositiveNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return TruncNormal(rng, mu, sigma, math.Nextafter(0, 1), math.Inf(1))
}

// Discrete is a finite discrete probability distribution with ascending,
// de-duplicated support. It is the "base probability distribution" object of
// Sec. IV-C: the summarised empirical distribution of a price window.
type Discrete struct {
	Values []float64
	Probs  []float64
}

// NewDiscreteFromSamples summarises a sample into a discrete distribution by
// quantising values to the given resolution (e.g. 1e-4 dollars) and counting.
// A resolution ≤ 0 keeps exact values.
func NewDiscreteFromSamples(xs []float64, resolution float64) Discrete {
	counts := map[float64]int{}
	for _, x := range xs {
		v := x
		if resolution > 0 {
			v = math.Round(x/resolution) * resolution
		}
		counts[v]++
	}
	d := Discrete{
		Values: make([]float64, 0, len(counts)),
		Probs:  make([]float64, 0, len(counts)),
	}
	for v := range counts {
		d.Values = append(d.Values, v)
	}
	sortFloats(d.Values)
	n := float64(len(xs))
	for _, v := range d.Values {
		d.Probs = append(d.Probs, float64(counts[v])/n)
	}
	return d
}

func sortFloats(xs []float64) {
	// Insertion sort keeps this file dependency-free of package sort churn
	// for tiny supports; fall back to O(n log n) only when needed.
	if len(xs) > 64 {
		quickSort(xs)
		return
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func quickSort(xs []float64) {
	if len(xs) < 2 {
		return
	}
	p := xs[len(xs)/2]
	l, r := 0, len(xs)-1
	for l <= r {
		for xs[l] < p {
			l++
		}
		for xs[r] > p {
			r--
		}
		if l <= r {
			xs[l], xs[r] = xs[r], xs[l]
			l++
			r--
		}
	}
	quickSort(xs[:r+1])
	quickSort(xs[l:])
}

// Len returns the support size.
func (d Discrete) Len() int { return len(d.Values) }

// Mean returns the expectation.
func (d Discrete) Mean() float64 {
	s := 0.0
	for i, v := range d.Values {
		s += v * d.Probs[i]
	}
	return s
}

// TotalMass returns the probability sum (≈1 for a proper distribution).
func (d Discrete) TotalMass() float64 {
	s := 0.0
	for _, p := range d.Probs {
		s += p
	}
	return s
}

// CDF returns P(X ≤ x).
func (d Discrete) CDF(x float64) float64 {
	s := 0.0
	for i, v := range d.Values {
		if v > x {
			break
		}
		s += d.Probs[i]
	}
	return s
}

// Sample draws one value.
func (d Discrete) Sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	acc := 0.0
	for i, p := range d.Probs {
		acc += p
		if u <= acc {
			return d.Values[i]
		}
	}
	return d.Values[len(d.Values)-1]
}

// Truncate returns the sub-distribution with values ≤ cut (probabilities
// not renormalised) and the removed tail mass. This is the first half of the
// paper's bid-dependent dynamic sampling step (Eq. 10).
func (d Discrete) Truncate(cut float64) (kept Discrete, tailMass float64) {
	for i, v := range d.Values {
		if v <= cut {
			kept.Values = append(kept.Values, v)
			kept.Probs = append(kept.Probs, d.Probs[i])
		} else {
			tailMass += d.Probs[i]
		}
	}
	return kept, tailMass
}

// Aggregate reduces the support to at most k states by merging adjacent
// values, weighting merged values by probability mass. Used to cap the
// scenario-tree branching factor.
func (d Discrete) Aggregate(k int) Discrete {
	n := d.Len()
	if k <= 0 || n <= k {
		return Discrete{
			Values: append([]float64(nil), d.Values...),
			Probs:  append([]float64(nil), d.Probs...),
		}
	}
	// Merge into at most k groups of (near-)equal probability mass: each
	// state joins the group its mass midpoint falls into, which is robust
	// when a single state carries most of the mass.
	total := d.TotalMass()
	target := total / float64(k)
	group := make([]int, n)
	cum := 0.0
	for i := 0; i < n; i++ {
		mid := cum + d.Probs[i]/2
		g := int(mid / target)
		if g > k-1 {
			g = k - 1
		}
		if i > 0 && g < group[i-1] {
			g = group[i-1] // groups are contiguous and nondecreasing
		}
		group[i] = g
		cum += d.Probs[i]
	}
	out := Discrete{}
	accP, accPV := 0.0, 0.0
	for i := 0; i < n; i++ {
		accP += d.Probs[i]
		accPV += d.Probs[i] * d.Values[i]
		if i == n-1 || group[i+1] != group[i] {
			out.Values = append(out.Values, accPV/accP)
			out.Probs = append(out.Probs, accP)
			accP, accPV = 0, 0
		}
	}
	return out
}
