package stats

import (
	"errors"
	"math"
	"sort"
)

// TestResult reports a hypothesis-test statistic and p-value.
type TestResult struct {
	Stat   float64
	PValue float64
}

// Rejects reports whether the null hypothesis is rejected at level alpha.
func (r TestResult) Rejects(alpha float64) bool { return r.PValue < alpha }

// ShapiroWilk performs the Shapiro–Wilk normality test using Royston's
// AS R94 approximation, valid for 3 ≤ n ≤ 5000. The null hypothesis is that
// the sample is drawn from a normal distribution; a small p-value rejects
// normality. This is the test the paper applies to the spot-price window in
// Fig. 5.
func ShapiroWilk(xs []float64) (TestResult, error) {
	n := len(xs)
	if n < 3 {
		return TestResult{}, errors.New("stats: ShapiroWilk needs n >= 3")
	}
	if n > 5000 {
		return TestResult{}, errors.New("stats: ShapiroWilk valid for n <= 5000")
	}
	x := append([]float64(nil), xs...)
	sort.Float64s(x)
	if x[0] == x[n-1] { //lint:ignore rentlint/floatcmp degenerate-sample check on sorted data: equal extremes mean a literally constant sample
		return TestResult{}, errors.New("stats: ShapiroWilk needs sample range > 0")
	}

	// Expected normal order statistics m and their normalisation.
	m := make([]float64, n)
	ssm := 0.0
	for i := 0; i < n; i++ {
		m[i] = NormalQuantile((float64(i+1) - 0.375) / (float64(n) + 0.25))
		ssm += m[i] * m[i]
	}
	a := make([]float64, n)
	rsn := 1 / math.Sqrt(float64(n))
	if n == 3 {
		a[0] = math.Sqrt(0.5)
		a[2] = -a[0]
	} else {
		// Royston polynomial-corrected weights for the extreme entries.
		c := make([]float64, n)
		den := math.Sqrt(ssm)
		for i := range c {
			c[i] = m[i] / den
		}
		an := polyval([]float64{-2.706056, 4.434685, -2.071190, -0.147981, 0.221157, c[n-1]}, rsn)
		a[n-1] = an
		a[0] = -an
		var phi float64
		if n > 5 {
			an1 := polyval([]float64{-3.582633, 5.682633, -1.752461, -0.293762, 0.042981, c[n-2]}, rsn)
			a[n-2] = an1
			a[1] = -an1
			phi = (ssm - 2*m[n-1]*m[n-1] - 2*m[n-2]*m[n-2]) / (1 - 2*an*an - 2*an1*an1)
			for i := 2; i < n-2; i++ {
				a[i] = m[i] / math.Sqrt(phi)
			}
		} else {
			phi = (ssm - 2*m[n-1]*m[n-1]) / (1 - 2*an*an)
			for i := 1; i < n-1; i++ {
				a[i] = m[i] / math.Sqrt(phi)
			}
		}
	}

	mean := Mean(x)
	var num, den float64
	for i := 0; i < n; i++ {
		num += a[i] * x[i]
		d := x[i] - mean
		den += d * d
	}
	w := num * num / den
	if w > 1 {
		w = 1
	}

	// p-value via Royston's normalising transformation.
	var z float64
	switch {
	case n == 3:
		// Exact for n=3: p = (6/π)·(asin(sqrt(W)) − asin(sqrt(0.75))).
		p := (6 / math.Pi) * (math.Asin(math.Sqrt(w)) - math.Asin(math.Sqrt(0.75)))
		if p < 0 {
			p = 0
		}
		return TestResult{Stat: w, PValue: p}, nil
	case n < 12:
		gamma := -2.273 + 0.459*float64(n)
		wln := -math.Log(gamma - math.Log1p(-w))
		mu := polyval([]float64{-0.0006714, 0.025054, -0.39978, 0.5440}, float64(n))
		sigma := math.Exp(polyval([]float64{-0.0020322, 0.062767, -0.77857, 1.3822}, float64(n)))
		z = (wln - mu) / sigma
	default:
		ln := math.Log(float64(n))
		wln := math.Log1p(-w)
		mu := polyval([]float64{0.0038915, -0.083751, -0.31082, -1.5861}, ln)
		sigma := math.Exp(polyval([]float64{0.0030302, -0.082676, -0.4803}, ln))
		z = (wln - mu) / sigma
	}
	return TestResult{Stat: w, PValue: 1 - NormalCDF(z)}, nil
}

// polyval evaluates a polynomial with coefficients in descending order.
func polyval(coef []float64, x float64) float64 {
	v := 0.0
	for _, c := range coef {
		v = v*x + c
	}
	return v
}

// JarqueBera performs the Jarque–Bera normality test. The statistic is
// asymptotically χ²(2) under the null of normality.
func JarqueBera(xs []float64) (TestResult, error) {
	n := len(xs)
	if n < 8 {
		return TestResult{}, errors.New("stats: JarqueBera needs n >= 8")
	}
	s := Skewness(xs)
	k := Kurtosis(xs)
	jb := float64(n) / 6 * (s*s + k*k/4)
	// χ²(2) survival function is exp(−x/2).
	return TestResult{Stat: jb, PValue: math.Exp(-jb / 2)}, nil
}
