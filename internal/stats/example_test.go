package stats_test

import (
	"fmt"

	"rentplan/internal/stats"
)

// ExampleBoxWhisker flags 1.5·IQR outliers, the Fig. 3 rule.
func ExampleBoxWhisker() {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 50}
	f := stats.BoxWhisker(xs)
	fmt.Printf("median=%.1f outliers=%v\n", f.Median, f.Outliers)
	// Output: median=6.0 outliers=[50]
}

// ExampleDiscrete_Truncate performs the bid-dependent truncation of Eq. 10.
func ExampleDiscrete_Truncate() {
	base := stats.Discrete{
		Values: []float64{0.056, 0.060, 0.064},
		Probs:  []float64{0.3, 0.4, 0.3},
	}
	kept, outOfBid := base.Truncate(0.060)
	fmt.Printf("kept %v, out-of-bid mass %.1f\n", kept.Values, outOfBid)
	// Output: kept [0.056 0.06], out-of-bid mass 0.3
}
