package demand_test

import (
	"fmt"

	"rentplan/internal/demand"
)

// ExampleSeries materialises a diurnal workload.
func ExampleSeries() {
	p := demand.Diurnal{Base: 1, Amp: 0.5}
	xs := demand.Series(p, 4)
	fmt.Printf("%.2f %.2f %.2f %.2f\n", xs[0], xs[1], xs[2], xs[3])
	// Output: 1.00 1.13 1.25 1.35
}
