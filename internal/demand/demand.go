// Package demand provides the per-instance data-service demand processes
// D(i,t) that drive the rental planning models. The paper samples hourly
// demand from a truncated normal N(0.4, 0.2) GB (Sec. V-A); additional
// processes (constant, diurnal, bursty) support the sensitivity studies and
// examples.
package demand

import (
	"fmt"
	"math"
	"math/rand"

	"rentplan/internal/stats"
)

// Process generates a demand value (GB) for each time slot.
type Process interface {
	// At returns the demand for slot t (t = 0,1,...). Values are ≥ 0.
	At(t int) float64
	// Name identifies the process in reports.
	Name() string
}

// Series materialises the first n slots of a process.
func Series(p Process, n int) []float64 {
	out := make([]float64, n)
	for t := 0; t < n; t++ {
		out[t] = p.At(t)
	}
	return out
}

// TruncNormal is the paper's default demand: i.i.d. N(mu, sigma²) truncated
// to positive values. Draws are memoised so At is deterministic per slot.
type TruncNormal struct {
	Mu, Sigma float64
	rng       *rand.Rand
	cache     []float64
}

// NewTruncNormal builds the paper's N(0.4, 0.2) process when mu=0.4,
// sigma=0.2.
func NewTruncNormal(mu, sigma float64, seed int64) *TruncNormal {
	return &TruncNormal{Mu: mu, Sigma: sigma, rng: stats.NewRNG(seed)}
}

// At returns the demand for slot t.
func (p *TruncNormal) At(t int) float64 {
	for len(p.cache) <= t {
		p.cache = append(p.cache, stats.PositiveNormal(p.rng, p.Mu, p.Sigma))
	}
	return p.cache[t]
}

// Name implements Process.
func (p *TruncNormal) Name() string {
	return fmt.Sprintf("truncnormal(%.2g,%.2g)", p.Mu, p.Sigma)
}

// Constant is a fixed demand per slot.
type Constant struct{ Value float64 }

// At implements Process.
func (p Constant) At(int) float64 { return p.Value }

// Name implements Process.
func (p Constant) Name() string { return fmt.Sprintf("constant(%.2g)", p.Value) }

// Diurnal follows a day/night cycle: Base·(1 + Amp·sin(2π(t−Phase)/24)),
// clamped at zero.
type Diurnal struct {
	Base, Amp float64
	Phase     int
}

// At implements Process.
func (p Diurnal) At(t int) float64 {
	v := p.Base * (1 + p.Amp*sin24(t-p.Phase))
	if v < 0 {
		return 0
	}
	return v
}

// Name implements Process.
func (p Diurnal) Name() string { return fmt.Sprintf("diurnal(%.2g,%.2g)", p.Base, p.Amp) }

func sin24(t int) float64 {
	// Small fixed table keeps the process integer-exact and allocation-free.
	return sinTable[((t%24)+24)%24]
}

// Sin24 exposes the tabulated 24-hour sine used by Diurnal. The fleet
// simulator's event engine integrates diurnal demand over whole segments via
// prefix sums of exactly these values, so per-segment accounting agrees with
// the per-slot Diurnal.At walk it replaces.
func Sin24(t int) float64 { return sin24(t) }

var sinTable = func() [24]float64 {
	var tbl [24]float64
	for i := 0; i < 24; i++ {
		tbl[i] = math.Sin(2 * math.Pi * float64(i) / 24)
	}
	return tbl
}()

// Bursty alternates quiet and burst phases: quiet slots draw Low, and with
// probability BurstProb a slot starts a burst of BurstLen slots drawing
// High. Draws are memoised per slot.
type Bursty struct {
	Low, High float64
	BurstProb float64
	BurstLen  int
	rng       *rand.Rand
	cache     []float64
	burstLeft int
}

// NewBursty builds a bursty process.
func NewBursty(low, high, prob float64, length int, seed int64) *Bursty {
	if length < 1 {
		length = 1
	}
	return &Bursty{Low: low, High: high, BurstProb: prob, BurstLen: length, rng: stats.NewRNG(seed)}
}

// At implements Process.
func (p *Bursty) At(t int) float64 {
	for len(p.cache) <= t {
		v := p.Low
		if p.burstLeft > 0 {
			v = p.High
			p.burstLeft--
		} else if p.rng.Float64() < p.BurstProb {
			v = p.High
			p.burstLeft = p.BurstLen - 1
		}
		p.cache = append(p.cache, v)
	}
	return p.cache[t]
}

// Name implements Process.
func (p *Bursty) Name() string {
	return fmt.Sprintf("bursty(%.2g/%.2g,p=%.2g)", p.Low, p.High, p.BurstProb)
}

// Fixed wraps a pre-computed demand series (cycling if t exceeds its
// length), used to replay a specific workload.
type Fixed struct {
	Values []float64
	Label  string
}

// At implements Process.
func (p Fixed) At(t int) float64 {
	if len(p.Values) == 0 {
		return 0
	}
	return p.Values[t%len(p.Values)]
}

// Name implements Process.
func (p Fixed) Name() string {
	if p.Label != "" {
		return p.Label
	}
	return "fixed"
}
