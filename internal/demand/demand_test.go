package demand

import (
	"math"
	"testing"
)

func TestTruncNormalProperties(t *testing.T) {
	p := NewTruncNormal(0.4, 0.2, 1)
	xs := Series(p, 5000)
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			t.Fatalf("non-positive demand %v", x)
		}
		sum += x
	}
	mean := sum / float64(len(xs))
	// Positive-truncated N(0.4,0.2) has mean slightly above 0.4.
	if mean < 0.38 || mean > 0.46 {
		t.Fatalf("mean %v", mean)
	}
	// Memoisation: At is stable.
	if p.At(17) != p.At(17) {
		t.Fatal("At not deterministic")
	}
	// Same seed reproduces the same series.
	q := NewTruncNormal(0.4, 0.2, 1)
	for i := 0; i < 100; i++ {
		if p.At(i) != q.At(i) {
			t.Fatal("seeded processes diverge")
		}
	}
	if p.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestConstant(t *testing.T) {
	p := Constant{Value: 0.7}
	if p.At(0) != 0.7 || p.At(99) != 0.7 {
		t.Fatal("constant broken")
	}
	if p.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestDiurnalCycle(t *testing.T) {
	p := Diurnal{Base: 1, Amp: 0.5}
	// Period 24: At(t) == At(t+24).
	for tt := 0; tt < 24; tt++ {
		if p.At(tt) != p.At(tt+24) {
			t.Fatalf("not periodic at %d", tt)
		}
		if p.At(tt) < 0 {
			t.Fatalf("negative demand at %d", tt)
		}
	}
	// Peak at t=6 (sin max), trough at t=18.
	if !(p.At(6) > p.At(0) && p.At(6) > p.At(18)) {
		t.Fatalf("cycle shape wrong: %v %v %v", p.At(0), p.At(6), p.At(18))
	}
	// Amp > 1 clamps at zero.
	deep := Diurnal{Base: 1, Amp: 2}
	if deep.At(18) != 0 {
		t.Fatalf("clamp failed: %v", deep.At(18))
	}
	// Phase shifts the cycle.
	ph := Diurnal{Base: 1, Amp: 0.5, Phase: 6}
	if ph.At(12) != p.At(6) {
		t.Fatal("phase shift wrong")
	}
	if ph.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestBursty(t *testing.T) {
	p := NewBursty(0.2, 2.0, 0.1, 3, 5)
	xs := Series(p, 2000)
	bursts, quiets := 0, 0
	for _, x := range xs {
		switch x {
		case 0.2:
			quiets++
		case 2.0:
			bursts++
		default:
			t.Fatalf("unexpected value %v", x)
		}
	}
	if bursts == 0 || quiets == 0 {
		t.Fatalf("bursts=%d quiets=%d", bursts, quiets)
	}
	// Burst fraction ~ p·len/(1+p·len) ≈ 0.23 for p=.1, len=3.
	frac := float64(bursts) / float64(len(xs))
	if frac < 0.1 || frac > 0.4 {
		t.Fatalf("burst fraction %v", frac)
	}
	// Deterministic per seed and memoised.
	q := NewBursty(0.2, 2.0, 0.1, 3, 5)
	for i := 0; i < 500; i++ {
		if p.At(i) != q.At(i) {
			t.Fatal("seeded processes diverge")
		}
	}
	// Length below 1 is clamped.
	r := NewBursty(0.1, 1, 0.5, 0, 1)
	if r.BurstLen != 1 {
		t.Fatalf("burst length %d", r.BurstLen)
	}
	if p.Name() == "" {
		t.Fatal("empty name")
	}
}

func TestFixed(t *testing.T) {
	p := Fixed{Values: []float64{1, 2, 3}}
	want := []float64{1, 2, 3, 1, 2, 3}
	for i, w := range want {
		if p.At(i) != w {
			t.Fatalf("At(%d) = %v", i, p.At(i))
		}
	}
	if (Fixed{}).At(5) != 0 {
		t.Fatal("empty fixed should be 0")
	}
	if p.Name() != "fixed" {
		t.Fatalf("name %q", p.Name())
	}
	if (Fixed{Label: "replay"}).Name() != "replay" {
		t.Fatal("label ignored")
	}
}

func TestSeriesLength(t *testing.T) {
	xs := Series(Constant{Value: 1}, 7)
	if len(xs) != 7 {
		t.Fatalf("len %d", len(xs))
	}
	if s := Series(Constant{Value: 1}, 0); len(s) != 0 {
		t.Fatal("empty series")
	}
	if math.IsNaN(xs[0]) {
		t.Fatal("NaN demand")
	}
}
