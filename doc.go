// Package rentplan is a pure-Go reproduction of "Optimal Resource Rental
// Planning for Elastic Applications in Cloud Market" (Zhao, Pan, Liu, Li,
// Fang — IEEE IPDPS 2012).
//
// The repository implements the paper's two planning models and every
// substrate they depend on, with no dependencies outside the standard
// library:
//
//   - internal/core — DRRP (deterministic MILP / Wagner–Whitin planning)
//     and SRRP (multistage stochastic planning on bid-adjusted scenario
//     trees), plus the execution layer that evaluates rental policies
//     against realised spot prices.
//   - internal/lp, internal/mip — a bounded-variable two-phase primal
//     simplex (with duals and Farkas certificates) and a branch-and-bound
//     MILP solver.
//   - internal/benders — the L-shaped method for two-stage stochastic LPs
//     and its nested multistage variant (Birge), the decomposition the
//     paper cites for SRRP.
//   - internal/lotsize — exact polynomial dynamic programs: Wagner–Whitin,
//     the Florian–Klein equal-capacity DP, and a Guan–Miller-style
//     scenario-tree DP.
//   - internal/market — Amazon-style pricing and an auction-driven spot
//     price simulator calibrated to the paper's published statistics.
//   - internal/stats, internal/timeseries, internal/arima,
//     internal/optimize — the statistics and SARIMA forecasting stack of
//     the paper's spot-price predictability study.
//   - internal/scenario — bid-dependent dynamic sampling (Eq. 10) and
//     multistage scenario-tree construction.
//   - internal/demand — workload (demand) processes.
//   - internal/spec — the JSON instance format behind `rentplan -spec`.
//   - internal/experiments — one harness per figure of the evaluation
//     section (Figs. 3–8, 10–12), plus extension and robustness studies.
//
// The top-level bench suite (bench_test.go) regenerates every figure and
// runs the ablation studies; see DESIGN.md for the experiment index and
// EXPERIMENTS.md for paper-versus-measured results.
package rentplan
