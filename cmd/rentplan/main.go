// Command rentplan solves a resource rental planning instance from the
// command line: a deterministic DRRP plan over a fixed horizon, a stochastic
// SRRP plan on a bid-adjusted scenario tree, or a full rolling-horizon
// execution of the stochastic policy against a realised trace.
//
// Examples:
//
//	rentplan -model drrp -class m1.xlarge -horizon 24
//	rentplan -model srrp -class c1.medium -stages 5 -bid 0.061 -days 60
//	rentplan -model nested -class c1.medium -stages 8 -branch 3 -saa 64 -reduce 16
//	rentplan -model exec -class c1.medium -horizon 48 -budget 50ms
//	rentplan -model fleet -class c1.medium -asps 100000 -shards 8 -epochs 12 -feedback 0.3
//	rentplan -spec instance.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"runtime/pprof"

	"rentplan/internal/benders"
	"rentplan/internal/core"
	"rentplan/internal/demand"
	"rentplan/internal/fleet"
	"rentplan/internal/market"
	"rentplan/internal/mip"
	"rentplan/internal/scenario"
	"rentplan/internal/spec"
	"rentplan/internal/stats"
)

func main() {
	var (
		model      = flag.String("model", "drrp", "planning model: drrp, srrp, nested (parallel nested L-shaped LP bound), exec (rolling-horizon execution), or fleet (event-driven sharded fleet simulation)")
		class      = flag.String("class", "c1.medium", "VM class (c1.medium, m1.large, m1.xlarge, c1.xlarge)")
		horizon    = flag.Int("horizon", 24, "DRRP planning horizon in hours")
		demandMean = flag.Float64("demand-mean", 0.4, "hourly demand mean (GB)")
		demandSD   = flag.Float64("demand-sd", 0.2, "hourly demand std dev (GB)")
		seed       = flag.Int64("seed", 1, "random seed for demand and prices")
		epsilon    = flag.Float64("epsilon", 0, "initial storage amount ε (GB)")
		phi        = flag.Float64("phi", 0.5, "input-output ratio Φ")
		stages     = flag.Int("stages", 5, "SRRP future stages")
		branch     = flag.Int("branch", 4, "SRRP scenario-tree branch cap (0 = uncapped)")
		bid        = flag.Float64("bid", 0, "SRRP bid price (0 = historical mean)")
		days       = flag.Int("days", 60, "SRRP price history length in days")
		jsonOut    = flag.Bool("json", false, "emit the plan as JSON")
		specFile   = flag.String("spec", "", "solve a JSON instance file instead of using flags")
		workers    = flag.Int("workers", 0, "branch-and-bound workers for MILP solves (0 = all cores, 1 = serial)")
		verbose    = flag.Bool("verbose", false, "stream MILP solver progress (and exec degradations) to stderr")
		budget     = flag.Duration("budget", 0, "wall-clock budget per rolling re-solve in exec mode (0 = unlimited); arms the degradation ladder")
		saa        = flag.Int("saa", 0, "nested mode: replace the tree by an SAA fan of this many sampled price paths (0 = solve the full tree)")
		reduce     = flag.Int("reduce", 0, "nested mode: reduce the SAA fan to this many scenarios by transport-optimal backward reduction (0 = no reduction; requires -saa)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
		asps       = flag.Int("asps", 1000, "fleet mode: ASP population size")
		shards     = flag.Int("shards", 4, "fleet mode: worker shards the population is partitioned across")
		epochs     = flag.Int("epochs", 8, "fleet mode: market epochs to simulate (each -horizon hours long)")
		feedback   = flag.Float64("feedback", 0, "fleet mode: demand/price feedback gain (0 = open loop)")
	)
	flag.Parse()

	if err := validateFlags(*model, *workers, *saa, *reduce, *horizon, *stages, *branch, *asps, *shards, *epochs, *feedback); err != nil {
		fmt.Fprintln(os.Stderr, "rentplan:", err)
		flag.Usage()
		os.Exit(2)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rentplan:", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rentplan:", err)
			}
		}()
	}

	if *specFile != "" {
		f, err := os.Open(*specFile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		ins, err := spec.Parse(f)
		if err != nil {
			fatal(err)
		}
		res, err := ins.Solve()
		if err != nil {
			fatal(err)
		}
		emitJSON(res)
		return
	}

	par := core.DefaultParams(market.VMClass(*class))
	par.Phi = *phi
	par.Epsilon = *epsilon
	par.Solver.Workers = *workers
	if *verbose {
		par.Solver.Progress = printProgress
	}
	if _, err := par.OnDemandRate(); err != nil {
		fatal(err)
	}
	dem := demand.Series(demand.NewTruncNormal(*demandMean, *demandSD, *seed), maxInt(*horizon, *stages+1))

	switch *model {
	case "drrp":
		lambda, _ := par.OnDemandRate()
		prices := make([]float64, *horizon)
		for t := range prices {
			prices[t] = lambda
		}
		plan, err := core.SolveDRRP(par, prices, dem[:*horizon])
		if err != nil {
			fatal(err)
		}
		np, err := core.NoPlanCost(par, prices, dem[:*horizon])
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			emitJSON(map[string]interface{}{
				"model": "drrp", "class": *class, "plan": plan, "noPlanCost": np.Cost,
			})
			return
		}
		fmt.Printf("DRRP plan for %s over %dh (ε=%.2f GB)\n", *class, *horizon, *epsilon)
		fmt.Printf("%-4s %8s %8s %8s %6s\n", "slot", "demand", "alpha", "beta", "rent")
		for t := 0; t < *horizon; t++ {
			fmt.Printf("%-4d %8.3f %8.3f %8.3f %6v\n", t, dem[t], plan.Alpha[t], plan.Beta[t], plan.Chi[t])
		}
		fmt.Printf("\ntotal cost      : $%.3f\n", plan.Cost)
		fmt.Printf("  compute       : $%.3f\n", plan.Breakdown.Compute)
		fmt.Printf("  storage + I/O : $%.3f\n", plan.Breakdown.Holding)
		fmt.Printf("  transfer      : $%.3f\n", plan.Breakdown.Transfer())
		fmt.Printf("no-plan cost    : $%.3f  (saving %.1f%%)\n", np.Cost, 100*(1-plan.Cost/np.Cost))

	case "srrp":
		gen, err := market.NewGenerator(market.VMClass(*class), *seed)
		if err != nil {
			fatal(err)
		}
		tr := gen.Trace(*days)
		hourly, err := tr.Hourly(0, *days*24)
		if err != nil {
			fatal(err)
		}
		base := stats.NewDiscreteFromSamples(hourly, 1e-3)
		b := *bid
		if b <= 0 {
			b = base.Mean()
		}
		bids := make([]float64, *stages)
		for i := range bids {
			bids[i] = b
		}
		lambda, _ := par.OnDemandRate()
		tree, err := scenario.Build(base, bids, lambda, scenario.BuildConfig{
			Stages:    *stages,
			MaxBranch: *branch,
			RootPrice: hourly[len(hourly)-1],
		})
		if err != nil {
			fatal(err)
		}
		plan, err := core.SolveSRRP(par, tree, dem[:*stages+1])
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			emitJSON(map[string]interface{}{
				"model": "srrp", "class": *class, "bid": b,
				"expectedCost": plan.ExpCost, "rootRent": plan.RootRent,
				"rootAlpha": plan.RootAlpha, "treeVertices": tree.N(),
			})
			return
		}
		fmt.Printf("SRRP plan for %s: %d stages, bid $%.4f, tree %d vertices\n",
			*class, *stages, b, tree.N())
		for s := 1; s <= *stages; s++ {
			fmt.Printf("  stage %d: E[price]=$%.4f  P(out-of-bid)=%.2f\n",
				s, tree.ExpectedPrice(s), tree.OutOfBidProb(s))
		}
		fmt.Printf("expected cost   : $%.4f\n", plan.ExpCost)
		fmt.Printf("here-and-now    : rent=%v generate=%.3f GB\n", plan.RootRent, plan.RootAlpha)

	case "nested":
		gen, err := market.NewGenerator(market.VMClass(*class), *seed)
		if err != nil {
			fatal(err)
		}
		hourly, err := gen.Trace(*days).Hourly(0, *days*24)
		if err != nil {
			fatal(err)
		}
		base := stats.NewDiscreteFromSamples(hourly, 1e-3)
		b := *bid
		if b <= 0 {
			b = base.Mean()
		}
		bids := make([]float64, *stages)
		for i := range bids {
			bids[i] = b
		}
		lambda, _ := par.OnDemandRate()
		tree, err := scenario.Build(base, bids, lambda, scenario.BuildConfig{
			Stages:    *stages,
			MaxBranch: *branch,
			RootPrice: hourly[len(hourly)-1],
		})
		if err != nil {
			fatal(err)
		}
		transport := 0.0
		if *saa > 0 {
			fan, err := tree.SampleFan(*saa, rand.New(rand.NewSource(*seed)))
			if err != nil {
				fatal(err)
			}
			if *reduce > 0 {
				fan, transport, err = fan.Reduce(*reduce)
				if err != nil {
					fatal(err)
				}
			}
			if tree, err = fan.Tree(); err != nil {
				fatal(err)
			}
		}
		res, bound, err := core.SolveSRRPNestedLShaped(par, tree, dem[:*stages+1],
			benders.NestedOptions{Workers: *workers})
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			emitJSON(map[string]interface{}{
				"model": "nested", "class": *class, "bid": b,
				"bound": bound, "converged": res.Converged,
				"iterations": res.Iterations, "cuts": res.Cuts,
				"cutsDeduped": res.CutsDeduped, "cutsEvicted": res.CutsEvicted,
				"vertexSolves": res.VertexSolves, "warmSolves": res.WarmSolves,
				"memoHits": res.MemoHits, "treeVertices": tree.N(),
				"transportBound": transport,
			})
			return
		}
		fmt.Printf("nested L-shaped LP bound for %s: %d stages, bid $%.4f, tree %d vertices\n",
			*class, *stages, b, tree.N())
		if *saa > 0 {
			fmt.Printf("SAA scenarios   : %d sampled", *saa)
			if *reduce > 0 {
				fmt.Printf(", reduced to %d (transport bound %.5f)", *reduce, transport)
			}
			fmt.Println()
		}
		fmt.Printf("lower bound     : $%.4f (converged=%v after %d sweeps)\n",
			bound, res.Converged, res.Iterations)
		fmt.Printf("cut warehouse   : %d stored, %d deduplicated, %d evicted\n",
			res.Cuts, res.CutsDeduped, res.CutsEvicted)
		fmt.Printf("vertex solves   : %d (%d warm-started, %d memo hits)\n",
			res.VertexSolves, res.WarmSolves, res.MemoHits)
		fmt.Printf("here-and-now    : rent=%v generate=%.3f GB\n",
			res.RootChi > 0.5, res.RootAlpha)

	case "exec":
		gen, err := market.NewGenerator(market.VMClass(*class), *seed)
		if err != nil {
			fatal(err)
		}
		hourly, err := gen.Trace(*days).Hourly(0, *days*24)
		if err != nil {
			fatal(err)
		}
		if *horizon <= 0 || *horizon >= len(hourly) {
			fatal(fmt.Errorf("exec horizon %d must lie inside the %dh trace", *horizon, len(hourly)))
		}
		hist := hourly[:len(hourly)-*horizon]
		eval := hourly[len(hourly)-*horizon:]
		base := stats.NewDiscreteFromSamples(hist, 1e-3)
		b := *bid
		if b <= 0 {
			b = base.Mean()
		}
		bids := make([]float64, *horizon)
		for i := range bids {
			bids[i] = b
		}
		execCfg := &core.ExecConfig{
			Par:        par,
			Actual:     eval,
			Demand:     dem[:*horizon],
			Base:       base,
			TreeStages: *stages,
			MaxBranch:  *branch,
			Budget:     *budget,
		}
		out, err := core.RunStochastic(execCfg, bids)
		if err != nil {
			fatal(err)
		}
		if *verbose {
			for _, d := range out.Degradations {
				fmt.Fprintf(os.Stderr, "rentplan: slot %d degraded to rung %s\n", d.Slot, d.Rung)
			}
		}
		if *jsonOut {
			emitJSON(map[string]interface{}{
				"model": "exec", "class": *class, "bid": b, "budget": budget.String(),
				"cost": out.Cost, "breakdown": out.Breakdown,
				"rentSlots": out.RentSlots, "outOfBidSlots": out.OutOfBidSlots,
				"replans": out.Replans, "degradations": out.Degradations,
			})
			return
		}
		fmt.Printf("rolling-horizon execution for %s over %dh (bid $%.4f, budget %v)\n",
			*class, *horizon, b, *budget)
		fmt.Printf("realised cost   : $%.4f\n", out.Cost)
		fmt.Printf("  compute       : $%.4f\n", out.Breakdown.Compute)
		fmt.Printf("  storage + I/O : $%.4f\n", out.Breakdown.Holding)
		fmt.Printf("  transfer      : $%.4f\n", out.Breakdown.Transfer())
		fmt.Printf("rented slots    : %d (%d out of bid)\n", out.RentSlots, out.OutOfBidSlots)
		fmt.Printf("replans         : %d\n", out.Replans)
		if n := len(out.Degradations); n > 0 {
			counts := map[core.DegradeRung]int{}
			for _, d := range out.Degradations {
				counts[d.Rung]++
			}
			fmt.Printf("degraded replans: %d (incumbent %d, dp %d, on-demand %d)\n",
				n, counts[core.RungIncumbent], counts[core.RungDP], counts[core.RungOnDemand])
		} else {
			fmt.Printf("degraded replans: 0\n")
		}

	case "fleet":
		pop, err := fleet.SamplePopulation(*asps, market.VMClass(*class), *seed)
		if err != nil {
			fatal(err)
		}
		fcfg := &fleet.Config{
			Class:      market.VMClass(*class),
			Population: pop,
			Shards:     *shards,
			Epochs:     *epochs,
			EpochHours: *horizon,
			Feedback:   *feedback,
			Seed:       *seed,
		}
		res, err := fleet.Run(fcfg)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			emitJSON(map[string]interface{}{
				"model": "fleet", "class": *class, "asps": *asps,
				"shards": *shards, "epochs": *epochs, "epochHours": *horizon,
				"feedback": *feedback, "totalCost": res.TotalCost,
				"demandGB": res.DemandGB, "finalBaseSpot": res.FinalBaseSpot,
				"slotsSimulated": res.SlotsSimulated, "wakes": res.Wakes,
				"solves": res.Solves, "epochReports": res.Epochs,
			})
			return
		}
		fmt.Printf("fleet simulation for %s: %d ASPs, %d shards, %d epochs of %dh (feedback gain %.2f)\n",
			*class, *asps, *shards, *epochs, *horizon, *feedback)
		fmt.Printf("%-6s %10s %10s %12s %10s\n", "epoch", "base $/h", "mean $/h", "spot slots", "wakes")
		for _, rep := range res.Epochs {
			fmt.Printf("%-6d %10.4f %10.4f %12d %10d\n",
				rep.Epoch, rep.BaseSpot, rep.MeanPrice, rep.SpotSlots, rep.Wakes)
		}
		fmt.Printf("\ntotal cost      : $%.2f\n", res.TotalCost)
		fmt.Printf("demand served   : %.1f GB\n", res.DemandGB)
		fmt.Printf("final base spot : $%.4f/h\n", res.FinalBaseSpot)
		fmt.Printf("ASP-slots       : %d (%d wakes, %.2f%% of slots)\n",
			res.SlotsSimulated, res.Wakes, 100*float64(res.Wakes)/float64(res.SlotsSimulated))

	default:
		fatal(fmt.Errorf("unknown model %q (want drrp, srrp, nested, exec, or fleet)", *model))
	}
}

// printProgress streams one MILP solver snapshot per callback to stderr,
// including the warm-start dispatch counts (hit/miss/dual/fallback), the
// mean simplex iterations per warm-started versus cold-started node, the
// sparse-pricing counters (full pricing sweeps, candidate-list hits, and the
// constraint-matrix nonzero count), and the dual-simplex/eta-file counters
// (dual pivots, eta updates, basis refactorisations).
func printProgress(st mip.Stats) {
	inc := "-"
	if st.HasIncumbent {
		inc = fmt.Sprintf("%.6g", st.Incumbent)
	}
	warmNodes := st.WarmHits + st.WarmMisses + st.WarmDuals + st.WarmFallbacks
	fmt.Fprintf(os.Stderr,
		"rentplan: mip %7.3fs %8d nodes (%6.0f/s) open %-6d iters %-8d inc %-12s bound %-12.6g gap %-9.3g warm %d/%d/%d/%d it/node %s warm, %s cold sweeps %-8d cand %-8d nnz %d dual %-8d etas %-8d refac %d\n",
		st.Elapsed.Seconds(), st.Nodes, st.NodesPerSec, st.OpenNodes,
		st.SimplexIters, inc, st.Bound, st.Gap,
		st.WarmHits, st.WarmMisses, st.WarmDuals, st.WarmFallbacks,
		perNode(st.WarmIters, warmNodes), perNode(st.ColdIters, st.ColdNodes),
		st.PricingSweeps, st.CandidateHits, st.NNZ,
		st.DualIters, st.EtaCount, st.Refactorizations)
}

// perNode formats a mean iteration count per node, or "-" when no node of
// that class has been solved yet.
func perNode(iters, nodes int64) string {
	if nodes == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", float64(iters)/float64(nodes))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func emitJSON(v interface{}) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

// validateFlags rejects nonsensical flag combinations before any work is
// done. Usage errors exit 2 (distinct from runtime failures, which exit 1),
// so scripts can tell a mistyped invocation from a failed solve.
func validateFlags(model string, workers, saa, reduce, horizon, stages, branch, asps, shards, epochs int, feedback float64) error {
	if workers < 0 {
		return fmt.Errorf("-workers %d must be >= 0 (0 = all cores)", workers)
	}
	if asps <= 0 {
		return fmt.Errorf("-asps %d must be > 0", asps)
	}
	if shards <= 0 {
		return fmt.Errorf("-shards %d must be > 0", shards)
	}
	if epochs <= 0 {
		return fmt.Errorf("-epochs %d must be > 0", epochs)
	}
	if feedback < 0 || math.IsNaN(feedback) || math.IsInf(feedback, 0) {
		return fmt.Errorf("-feedback %v must be a finite non-negative gain", feedback)
	}
	if feedback > 0 && model != "fleet" {
		return fmt.Errorf("-feedback only applies to -model fleet, not %q", model)
	}
	if saa < 0 {
		return fmt.Errorf("-saa %d must be >= 0 (0 = solve the full tree)", saa)
	}
	if reduce < 0 {
		return fmt.Errorf("-reduce %d must be >= 0 (0 = no reduction)", reduce)
	}
	if reduce > 0 && saa == 0 {
		return fmt.Errorf("-reduce %d requires -saa", reduce)
	}
	if reduce > saa {
		return fmt.Errorf("-reduce %d exceeds the -saa %d fan it reduces", reduce, saa)
	}
	if saa > 0 && model != "nested" {
		return fmt.Errorf("-saa only applies to -model nested, not %q", model)
	}
	if horizon <= 0 {
		return fmt.Errorf("-horizon %d must be > 0", horizon)
	}
	if stages < 0 {
		return fmt.Errorf("-stages %d must be >= 0", stages)
	}
	if branch < 0 {
		return fmt.Errorf("-branch %d must be >= 0 (0 = uncapped)", branch)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rentplan:", err)
	os.Exit(1)
}
