package main

import (
	"strings"
	"testing"
)

// TestValidateFlags pins the usage-error surface: every nonsensical flag
// combination is rejected with a message naming the offending flag, and
// every sensible one passes. main maps a non-nil error to exit code 2.
func TestValidateFlags(t *testing.T) {
	type args struct {
		model                                     string
		workers, saa, reduce, horizon, stages, br int
	}
	ok := args{model: "drrp", horizon: 24, stages: 5, br: 4}
	cases := []struct {
		name    string
		args    args
		wantErr string // empty = valid
	}{
		{"defaults", ok, ""},
		{"nested with saa and reduce", args{model: "nested", saa: 64, reduce: 16, horizon: 24, stages: 8, br: 3}, ""},
		{"saa without reduce", args{model: "nested", saa: 32, horizon: 24, stages: 8, br: 3}, ""},
		{"all cores", args{model: "drrp", workers: 0, horizon: 24, stages: 5, br: 4}, ""},
		{"negative workers", args{model: "drrp", workers: -1, horizon: 24, stages: 5, br: 4}, "-workers"},
		{"negative saa", args{model: "nested", saa: -8, horizon: 24, stages: 8, br: 3}, "-saa"},
		{"negative reduce", args{model: "nested", saa: 8, reduce: -1, horizon: 24, stages: 8, br: 3}, "-reduce"},
		{"reduce without saa", args{model: "nested", reduce: 16, horizon: 24, stages: 8, br: 3}, "requires -saa"},
		{"reduce exceeds saa", args{model: "nested", saa: 8, reduce: 16, horizon: 24, stages: 8, br: 3}, "exceeds the -saa"},
		{"saa outside nested", args{model: "srrp", saa: 8, horizon: 24, stages: 5, br: 4}, "only applies to -model nested"},
		{"zero horizon", args{model: "drrp", horizon: 0, stages: 5, br: 4}, "-horizon"},
		{"negative stages", args{model: "srrp", horizon: 24, stages: -1, br: 4}, "-stages"},
		{"negative branch", args{model: "srrp", horizon: 24, stages: 5, br: -2}, "-branch"},
	}
	for _, tc := range cases {
		err := validateFlags(tc.args.model, tc.args.workers, tc.args.saa, tc.args.reduce,
			tc.args.horizon, tc.args.stages, tc.args.br)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: no error, want one mentioning %q", tc.name, tc.wantErr)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}
