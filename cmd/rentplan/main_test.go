package main

import (
	"math"
	"strings"
	"testing"
)

// TestValidateFlags pins the usage-error surface: every nonsensical flag
// combination is rejected with a message naming the offending flag, and
// every sensible one passes. main maps a non-nil error to exit code 2.
func TestValidateFlags(t *testing.T) {
	type args struct {
		model                                     string
		workers, saa, reduce, horizon, stages, br int
		asps, shards, epochs                      int
		feedback                                  float64
	}
	// ok carries the positive fleet defaults every non-fleet invocation
	// inherits from the flag declarations.
	ok := args{model: "drrp", horizon: 24, stages: 5, br: 4, asps: 1000, shards: 4, epochs: 8}
	withModel := func(model string) args {
		a := ok
		a.model = model
		return a
	}
	fleetOK := withModel("fleet")
	fleetOK.feedback = 0.3
	type tcase struct {
		name    string
		args    args
		wantErr string // empty = valid
	}
	cases := []tcase{
		{"defaults", ok, ""},
		{"nested with saa and reduce", args{model: "nested", saa: 64, reduce: 16, horizon: 24, stages: 8, br: 3, asps: 1000, shards: 4, epochs: 8}, ""},
		{"saa without reduce", args{model: "nested", saa: 32, horizon: 24, stages: 8, br: 3, asps: 1000, shards: 4, epochs: 8}, ""},
		{"all cores", args{model: "drrp", workers: 0, horizon: 24, stages: 5, br: 4, asps: 1000, shards: 4, epochs: 8}, ""},
		{"fleet with feedback", fleetOK, ""},
		{"negative workers", args{model: "drrp", workers: -1, horizon: 24, stages: 5, br: 4, asps: 1000, shards: 4, epochs: 8}, "-workers"},
		{"negative saa", args{model: "nested", saa: -8, horizon: 24, stages: 8, br: 3, asps: 1000, shards: 4, epochs: 8}, "-saa"},
		{"negative reduce", args{model: "nested", saa: 8, reduce: -1, horizon: 24, stages: 8, br: 3, asps: 1000, shards: 4, epochs: 8}, "-reduce"},
		{"reduce without saa", args{model: "nested", reduce: 16, horizon: 24, stages: 8, br: 3, asps: 1000, shards: 4, epochs: 8}, "requires -saa"},
		{"reduce exceeds saa", args{model: "nested", saa: 8, reduce: 16, horizon: 24, stages: 8, br: 3, asps: 1000, shards: 4, epochs: 8}, "exceeds the -saa"},
		{"saa outside nested", args{model: "srrp", saa: 8, horizon: 24, stages: 5, br: 4, asps: 1000, shards: 4, epochs: 8}, "only applies to -model nested"},
		{"zero horizon", args{model: "drrp", horizon: 0, stages: 5, br: 4, asps: 1000, shards: 4, epochs: 8}, "-horizon"},
		{"negative stages", args{model: "srrp", horizon: 24, stages: -1, br: 4, asps: 1000, shards: 4, epochs: 8}, "-stages"},
		{"negative branch", args{model: "srrp", horizon: 24, stages: 5, br: -2, asps: 1000, shards: 4, epochs: 8}, "-branch"},
	}
	// Fleet flag rejections: zero and negative counts, non-finite or
	// negative gain, and the gain outside fleet mode — all before any work.
	mutate := func(f func(*args)) args {
		a := fleetOK
		f(&a)
		return a
	}
	cases = append(cases,
		tcase{"zero asps", mutate(func(a *args) { a.asps = 0 }), "-asps"},
		tcase{"negative asps", mutate(func(a *args) { a.asps = -5 }), "-asps"},
		tcase{"zero shards", mutate(func(a *args) { a.shards = 0 }), "-shards"},
		tcase{"negative shards", mutate(func(a *args) { a.shards = -2 }), "-shards"},
		tcase{"zero epochs", mutate(func(a *args) { a.epochs = 0 }), "-epochs"},
		tcase{"negative epochs", mutate(func(a *args) { a.epochs = -3 }), "-epochs"},
		tcase{"negative feedback", mutate(func(a *args) { a.feedback = -0.1 }), "-feedback"},
		tcase{"nan feedback", mutate(func(a *args) { a.feedback = math.NaN() }), "-feedback"},
		tcase{"feedback outside fleet", mutate(func(a *args) { a.model = "exec" }), "only applies to -model fleet"},
	)
	for _, tc := range cases {
		err := validateFlags(tc.args.model, tc.args.workers, tc.args.saa, tc.args.reduce,
			tc.args.horizon, tc.args.stages, tc.args.br,
			tc.args.asps, tc.args.shards, tc.args.epochs, tc.args.feedback)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: no error, want one mentioning %q", tc.name, tc.wantErr)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}
