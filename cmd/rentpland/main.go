// Command rentpland is the multi-tenant rental-planning daemon: an
// HTTP/JSON service that maps plan requests onto the rentplan solver stack
// through a bounded worker pool, a shared scenario-tree cache, and
// per-tenant warm-started rolling re-plans. See DESIGN.md §13.
//
// Usage:
//
//	rentpland -addr :8080 -workers 4 -queue 64 -budget 250ms
//
// Endpoints: POST /v1/plan, GET /v1/healthz, GET /v1/metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"rentplan/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "solver pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "admission queue cap (0 = 4x workers)")
		budget  = flag.Duration("budget", 250*time.Millisecond, "default per-request solve budget (0 = unbounded)")
		maxBud  = flag.Duration("max-budget", 5*time.Second, "ceiling on request-supplied budgets")
		trees   = flag.Int("cache-trees", 256, "scenario-tree cache capacity")
	)
	flag.Parse()
	if err := validateFlags(*workers, *queue, *budget, *maxBud, *trees); err != nil {
		fmt.Fprintln(os.Stderr, "rentpland:", err)
		os.Exit(2)
	}

	srv := serve.New(serve.Config{
		Workers:       *workers,
		Queue:         *queue,
		DefaultBudget: *budget,
		MaxBudget:     *maxBud,
		CacheTrees:    *trees,
	})
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Graceful shutdown: stop accepting, let in-flight solves finish (their
	// request contexts stay alive until Shutdown's grace period lapses).
	done := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		close(done)
	}()

	log.Printf("rentpland listening on %s (workers=%d queue=%d budget=%s)",
		*addr, *workers, *queue, *budget)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	<-done
}

// validateFlags rejects nonsensical flag combinations before the daemon
// binds its port; usage errors exit 2.
func validateFlags(workers, queue int, budget, maxBud time.Duration, trees int) error {
	if workers < 0 {
		return fmt.Errorf("-workers %d must be >= 0", workers)
	}
	if queue < 0 {
		return fmt.Errorf("-queue %d must be >= 0", queue)
	}
	if workers > 0 && queue > 0 && queue < workers {
		return fmt.Errorf("-queue %d smaller than -workers %d", queue, workers)
	}
	if budget < 0 {
		return fmt.Errorf("-budget %s must be >= 0", budget)
	}
	if maxBud <= 0 {
		return fmt.Errorf("-max-budget %s must be > 0", maxBud)
	}
	if budget > maxBud {
		return fmt.Errorf("-budget %s exceeds -max-budget %s", budget, maxBud)
	}
	if trees <= 0 {
		return fmt.Errorf("-cache-trees %d must be > 0", trees)
	}
	return nil
}
