package main

import (
	"testing"
	"time"
)

// TestValidateFlags pins the daemon's usage-error surface (exit 2 in main).
func TestValidateFlags(t *testing.T) {
	ms := time.Millisecond
	cases := []struct {
		name           string
		workers, queue int
		budget, maxBud time.Duration
		trees          int
		wantErr        bool
	}{
		{"defaults", 0, 0, 250 * ms, 5000 * ms, 256, false},
		{"explicit sizes", 4, 64, 0, 5000 * ms, 16, false},
		{"negative workers", -1, 0, 250 * ms, 5000 * ms, 256, true},
		{"negative queue", 0, -2, 250 * ms, 5000 * ms, 256, true},
		{"queue below workers", 8, 4, 250 * ms, 5000 * ms, 256, true},
		{"negative budget", 0, 0, -ms, 5000 * ms, 256, true},
		{"zero max budget", 0, 0, 250 * ms, 0, 256, true},
		{"budget above ceiling", 0, 0, 10000 * ms, 5000 * ms, 256, true},
		{"zero cache", 0, 0, 250 * ms, 5000 * ms, 0, true},
	}
	for _, tc := range cases {
		err := validateFlags(tc.workers, tc.queue, tc.budget, tc.maxBud, tc.trees)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err=%v, wantErr=%v", tc.name, err, tc.wantErr)
		}
	}
}
