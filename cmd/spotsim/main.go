// Command spotsim generates and analyses synthetic spot-price traces from
// the auction-driven market simulator.
//
// Examples:
//
//	spotsim -class c1.medium -days 120 -analyze summary
//	spotsim -class m1.large -days 507 -analyze forecast
//	spotsim -class c1.xlarge -days 90 -csv events > trace.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"rentplan/internal/arima"
	"rentplan/internal/market"
	"rentplan/internal/stats"
	"rentplan/internal/timeseries"
)

func main() {
	var (
		class   = flag.String("class", "c1.medium", "VM class")
		days    = flag.Int("days", 120, "trace length in days")
		seed    = flag.Int64("seed", market.ReferenceSeed, "generator seed")
		analyze = flag.String("analyze", "summary", "analysis: summary, acf, decompose, forecast, none")
		csv     = flag.String("csv", "", "emit CSV instead of analysis: events or hourly")
		in      = flag.String("in", "", "read an hour,price CSV trace instead of generating one")
		workers = flag.Int("workers", 0, "cap the number of CPUs used (0 = all cores)")
		verbose = flag.Bool("verbose", false, "print per-step wall times to stderr")
	)
	flag.Parse()
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}
	step := stepTimer(*verbose)

	var tr *market.SpotTrace
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		tr, err = market.ReadTraceCSV(f, market.VMClass(*class))
		f.Close()
		if err != nil {
			fatal(err)
		}
		*days = tr.Days
	} else {
		gen, err := market.NewGenerator(market.VMClass(*class), *seed)
		if err != nil {
			fatal(err)
		}
		tr = gen.Trace(*days)
	}
	step("trace")
	hourly, err := tr.Hourly(0, *days*24)
	if err != nil {
		fatal(err)
	}
	step("hourly resample")

	switch *csv {
	case "events":
		fmt.Println("hour,price")
		for _, e := range tr.Events.Events {
			fmt.Printf("%.4f,%.4f\n", e.Hour, e.Value)
		}
		return
	case "hourly":
		fmt.Println("hour,price")
		for t, v := range hourly {
			fmt.Printf("%d,%.4f\n", t, v)
		}
		return
	case "":
	default:
		fatal(fmt.Errorf("unknown csv mode %q", *csv))
	}

	switch *analyze {
	case "none":
	case "summary":
		vals := tr.Events.Values()
		f := stats.BoxWhisker(vals)
		fmt.Printf("trace: %s, %d days, %d update events\n", *class, *days, len(vals))
		fmt.Printf("five-number: min=%.4f q1=%.4f med=%.4f q3=%.4f max=%.4f\n",
			f.Min, f.Q1, f.Median, f.Q3, f.Max)
		fmt.Printf("outliers (1.5·IQR): %d (%.2f%%)\n", len(f.Outliers), 100*f.OutlierFrac())
		counts := tr.Events.DailyUpdateCounts(0, *days)
		mn, mx, sum := counts[0], counts[0], 0
		for _, c := range counts {
			if c < mn {
				mn = c
			}
			if c > mx {
				mx = c
			}
			sum += c
		}
		fmt.Printf("daily updates: min=%d max=%d mean=%.1f\n", mn, mx, float64(sum)/float64(len(counts)))
		sw, err := stats.ShapiroWilk(capLen(hourly, 5000))
		if err == nil {
			fmt.Printf("Shapiro-Wilk on hourly series: W=%.4f p=%.3g\n", sw.Stat, sw.PValue)
		}
	case "acf":
		acf, err := timeseries.ACF(hourly, 48)
		if err != nil {
			fatal(err)
		}
		pacf, err := timeseries.PACF(hourly, 48)
		if err != nil {
			fatal(err)
		}
		band := timeseries.ConfidenceBand(len(hourly))
		fmt.Printf("95%% band = ±%.4f\n", band)
		fmt.Println("lag,acf,pacf,significant")
		for k := 1; k <= 48; k++ {
			sig := ""
			if acf[k] > band || acf[k] < -band {
				sig = "*"
			}
			fmt.Printf("%d,%.4f,%.4f,%s\n", k, acf[k], pacf[k], sig)
		}
	case "decompose":
		d, err := timeseries.Decompose(hourly, 24)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("seasonal strength=%.4f trend strength=%.4f\n",
			d.SeasonalStrength(), d.TrendStrength())
		fmt.Println("phase,seasonal")
		for ph := 0; ph < 24; ph++ {
			fmt.Printf("%d,%.6f\n", ph, d.Seasonal[ph])
		}
	case "forecast":
		if len(hourly) < 26 {
			fatal(fmt.Errorf("trace too short for forecasting"))
		}
		histLen := len(hourly) - 24
		hist, actual := hourly[:histLen], hourly[histLen:]
		m, err := arima.Fit(hist, arima.Spec{P: 2, Q: 1, SP: 2, Period: 24, WithMean: true})
		if err != nil {
			fatal(err)
		}
		fc, err := m.Forecast(24)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("model %s  AIC=%.1f\n", m.Spec, m.AIC)
		fmt.Println("hour,predicted,lower95,upper95,actual")
		for t := 0; t < 24; t++ {
			fmt.Printf("%d,%.4f,%.4f,%.4f,%.4f\n", t, fc.Mean[t], fc.Lower[t], fc.Upper[t], actual[t])
		}
		fmt.Printf("MSPE(SARIMA)=%.3g MSPE(mean)=%.3g\n",
			arima.MSPE(fc.Mean, actual), arima.MSPE(arima.MeanForecast(hist, 24), actual))
	default:
		fatal(fmt.Errorf("unknown analysis %q", *analyze))
	}
	step("analysis")
}

// stepTimer returns a closure that, when enabled, prints the wall time of
// each pipeline step (time since the previous call) to stderr.
func stepTimer(enabled bool) func(string) {
	if !enabled {
		return func(string) {}
	}
	last := time.Now()
	return func(name string) {
		now := time.Now()
		fmt.Fprintf(os.Stderr, "spotsim: %-16s %8.3fs\n", name, now.Sub(last).Seconds())
		last = now
	}
}

func capLen(xs []float64, n int) []float64 {
	if len(xs) > n {
		return xs[:n]
	}
	return xs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spotsim:", err)
	os.Exit(1)
}
