// Command paperrepro regenerates every table and figure of the paper's
// evaluation section and writes the textual report.
//
// Examples:
//
//	paperrepro                 # full-scale reproduction (reference traces)
//	paperrepro -quick          # reduced configuration, ~1 second
//	paperrepro -out report.txt # write the report to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"time"

	"rentplan/internal/experiments"
	"rentplan/internal/mip"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "use the reduced test-scale configuration")
		search  = flag.Bool("search-orders", false, "run the (slow) SARIMA order search for Fig. 8")
		out     = flag.String("out", "", "output file (default stdout)")
		seed    = flag.Int64("seed", 7, "seed for the quick configuration")
		noExt   = flag.Bool("no-extensions", false, "skip the beyond-the-paper extension studies (capacity, forecast skill, risk, federation, SAA scenario reduction, fleet market equilibrium)")
		budget  = flag.Duration("budget", 0, "wall-clock budget per rolling re-solve in the Fig. 12 executors (0 = unlimited)")
		verbose = flag.Bool("verbose", false, "stream MILP solver statistics (warm-start dispatch, dual-simplex and eta-file counters) to stderr")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "paperrepro:", err)
				return
			}
			defer f.Close()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "paperrepro:", err)
			}
		}()
	}

	var cfg *experiments.Config
	var err error
	if *quick {
		cfg, err = experiments.QuickConfig(*seed)
	} else {
		cfg, err = experiments.DefaultConfig()
	}
	if err != nil {
		fatal(err)
	}
	cfg.Budget = *budget
	if *verbose {
		cfg.SolverProgress = printSolverProgress
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	start := time.Now()
	fmt.Fprintf(w, "Reproduction of: Zhao et al., \"Optimal Resource Rental Planning for\n")
	fmt.Fprintf(w, "Elastic Applications in Cloud Market\", IPDPS 2012.\n")
	fmt.Fprintf(w, "Configuration: %d traces, history %d days, %d evaluation windows.\n\n",
		len(cfg.Traces), cfg.HistDays, len(cfg.EvalDays))
	if err := experiments.RunAll(cfg, w, *search); err != nil {
		fatal(err)
	}
	if !*noExt {
		fmt.Fprintln(w)
		if err := experiments.RunExtensions(cfg, w); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(w, "\ncompleted in %v\n", time.Since(start).Round(time.Millisecond))
}

// printSolverProgress streams one branch-and-bound snapshot per callback to
// stderr, including the warm-start dispatch split (hit/miss/dual/fallback)
// and the dual-simplex/eta-file counters.
func printSolverProgress(st mip.Stats) {
	inc := "-"
	if st.HasIncumbent {
		inc = fmt.Sprintf("%.6g", st.Incumbent)
	}
	fmt.Fprintf(os.Stderr,
		"paperrepro: mip %7.3fs %8d nodes open %-6d iters %-8d inc %-12s gap %-9.3g warm %d/%d/%d/%d dual %-8d etas %-8d refac %d\n",
		st.Elapsed.Seconds(), st.Nodes, st.OpenNodes, st.SimplexIters, inc, st.Gap,
		st.WarmHits, st.WarmMisses, st.WarmDuals, st.WarmFallbacks,
		st.DualIters, st.EtaCount, st.Refactorizations)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperrepro:", err)
	os.Exit(1)
}
