package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"rentplan/internal/analysis"
)

func corpus() string {
	return filepath.Join("..", "..", "internal", "analysis", "testdata", "lintmod")
}

// TestJSONExitCode drives the CLI against the corpus module, which contains
// deliberate findings: -json must emit a parseable array and the process
// must signal the findings through exit code 1.
func TestJSONExitCode(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-C", corpus(), "-json", "./..."}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errBuf.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json emitted an empty array for a corpus full of findings")
	}
	for _, d := range diags {
		if d.Analyzer == "" || d.File == "" || d.Line <= 0 || d.Col <= 0 {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if d.Suppressed {
			t.Errorf("suppressed diagnostic leaked into the default -json output: %+v", d)
		}
	}
}

// TestSuppressedFlag includes the neutralised findings, which must carry the
// suppressed marker in JSON.
func TestSuppressedFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-C", corpus(), "-json", "-suppressed", "./..."}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errBuf.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output does not parse: %v", err)
	}
	found := false
	for _, d := range diags {
		if d.Suppressed {
			found = true
			break
		}
	}
	if !found {
		t.Error("-suppressed output contains no suppressed diagnostics")
	}
}

// TestPatternScoping restricts the run to one corpus subtree; findings from
// other directories must not leak through.
func TestPatternScoping(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-C", corpus(), "-json", "./internal/lotsize/..."}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errBuf.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output does not parse: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics for ./internal/lotsize/...")
	}
	for _, d := range diags {
		if !strings.HasPrefix(d.File, "internal/lotsize/") {
			t.Errorf("pattern ./internal/lotsize/... leaked diagnostic from %s", d.File)
		}
	}
}

// TestOnlyFlag restricts the run to a single analyzer; no other analyzer
// may contribute diagnostics, and the corpus still has findings for it.
func TestOnlyFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-C", corpus(), "-json", "-only", "floatcmp", "./..."}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errBuf.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output does not parse: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("-only floatcmp produced no diagnostics")
	}
	for _, d := range diags {
		// badignore is engine-level and always on; everything else must be
		// the selected analyzer.
		if d.Analyzer != "floatcmp" && d.Analyzer != "badignore" {
			t.Errorf("-only floatcmp leaked a %s diagnostic at %s:%d", d.Analyzer, d.File, d.Line)
		}
	}
}

// TestSkipFlag excludes one analyzer; its diagnostics must vanish while the
// rest of the suite still reports.
func TestSkipFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-C", corpus(), "-json", "-skip", "rentlint/floatcmp,staleignore", "./..."}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errBuf.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output does not parse: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("-skip floatcmp silenced the whole suite")
	}
	for _, d := range diags {
		if d.Analyzer == "floatcmp" || d.Analyzer == "staleignore" {
			t.Errorf("-skip leaked a %s diagnostic at %s:%d", d.Analyzer, d.File, d.Line)
		}
	}
}

// TestUnknownAnalyzerName is a usage error: exit code 2, nothing analyzed.
func TestUnknownAnalyzerName(t *testing.T) {
	for _, flagName := range []string{"-only", "-skip"} {
		var out, errBuf bytes.Buffer
		code := run([]string{"-C", corpus(), flagName, "nosuch", "./..."}, &out, &errBuf)
		if code != 2 {
			t.Errorf("%s nosuch: exit code = %d, want 2", flagName, code)
		}
		if !strings.Contains(errBuf.String(), "unknown analyzer") {
			t.Errorf("%s nosuch: stderr %q does not name the unknown analyzer", flagName, errBuf.String())
		}
	}
}

// TestOnlyList narrows -list to the selected subset.
func TestOnlyList(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-list", "-only", "floatcmp,nanprop"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "rentlint/floatcmp") || !strings.Contains(out.String(), "rentlint/nanprop") {
		t.Fatalf("-list -only output is missing the selected analyzers:\n%s", out.String())
	}
	if strings.Contains(out.String(), "rentlint/synccopy") {
		t.Fatalf("-list -only output contains an unselected analyzer:\n%s", out.String())
	}
}

// TestPathStability pins the -C contract: however the module root is
// spelled — relative path, trailing separator, or absolute — every reported
// File is identical and module-root-relative, including findings located in
// external _test packages. Tooling that consumes -json (CI annotations,
// editors) keys on these paths, so they must not depend on the invocation
// directory.
func TestPathStability(t *testing.T) {
	abs, err := filepath.Abs(corpus())
	if err != nil {
		t.Fatal(err)
	}
	runWith := func(root string) []analysis.Diagnostic {
		t.Helper()
		var out, errBuf bytes.Buffer
		code := run([]string{"-C", root, "-json", "-suppressed", "./..."}, &out, &errBuf)
		if code != 1 {
			t.Fatalf("-C %s: exit code = %d, want 1; stderr: %s", root, code, errBuf.String())
		}
		var diags []analysis.Diagnostic
		if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
			t.Fatalf("-C %s: -json output does not parse: %v", root, err)
		}
		return diags
	}
	base := runWith(corpus())
	xtest := false
	for _, d := range base {
		if filepath.IsAbs(d.File) || strings.HasPrefix(d.File, "..") {
			t.Errorf("File %q is not module-root-relative", d.File)
		}
		if strings.Contains(d.File, `\`) {
			t.Errorf("File %q is not slash-separated", d.File)
		}
		if strings.HasSuffix(d.File, "external_test.go") {
			xtest = true
		}
	}
	if !xtest {
		t.Error("no diagnostic from the external _test package; the xtest unit was dropped")
	}
	for _, root := range []string{abs, abs + string(filepath.Separator)} {
		got := runWith(root)
		if len(got) != len(base) {
			t.Fatalf("-C %s: %d diagnostics, want %d", root, len(got), len(base))
		}
		for i := range got {
			if got[i] != base[i] {
				t.Errorf("-C %s: diagnostic %d = %+v, want %+v", root, i, got[i], base[i])
			}
		}
	}
}

// TestList prints the analyzer roster and exits 0.
func TestList(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-list"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errBuf.String())
	}
	for _, a := range analysis.All() {
		if !strings.Contains(out.String(), "rentlint/"+a.Name) {
			t.Errorf("-list output is missing rentlint/%s:\n%s", a.Name, out.String())
		}
	}
}
