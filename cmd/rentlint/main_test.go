package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"rentplan/internal/analysis"
)

func corpus() string {
	return filepath.Join("..", "..", "internal", "analysis", "testdata", "lintmod")
}

// TestJSONExitCode drives the CLI against the corpus module, which contains
// deliberate findings: -json must emit a parseable array and the process
// must signal the findings through exit code 1.
func TestJSONExitCode(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-C", corpus(), "-json", "./..."}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errBuf.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output does not parse: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("-json emitted an empty array for a corpus full of findings")
	}
	for _, d := range diags {
		if d.Analyzer == "" || d.File == "" || d.Line <= 0 || d.Col <= 0 {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if d.Suppressed {
			t.Errorf("suppressed diagnostic leaked into the default -json output: %+v", d)
		}
	}
}

// TestSuppressedFlag includes the neutralised findings, which must carry the
// suppressed marker in JSON.
func TestSuppressedFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-C", corpus(), "-json", "-suppressed", "./..."}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errBuf.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output does not parse: %v", err)
	}
	found := false
	for _, d := range diags {
		if d.Suppressed {
			found = true
			break
		}
	}
	if !found {
		t.Error("-suppressed output contains no suppressed diagnostics")
	}
}

// TestPatternScoping restricts the run to one corpus subtree; findings from
// other directories must not leak through.
func TestPatternScoping(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-C", corpus(), "-json", "./internal/lotsize/..."}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; stderr: %s", code, errBuf.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("-json output does not parse: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("no diagnostics for ./internal/lotsize/...")
	}
	for _, d := range diags {
		if !strings.HasPrefix(d.File, "internal/lotsize/") {
			t.Errorf("pattern ./internal/lotsize/... leaked diagnostic from %s", d.File)
		}
	}
}

// TestList prints the analyzer roster and exits 0.
func TestList(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-list"}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0; stderr: %s", code, errBuf.String())
	}
	for _, a := range analysis.All() {
		if !strings.Contains(out.String(), "rentlint/"+a.Name) {
			t.Errorf("-list output is missing rentlint/%s:\n%s", a.Name, out.String())
		}
	}
}
