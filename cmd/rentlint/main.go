// Command rentlint runs the solver-aware static-analysis suite of
// internal/analysis over this module and reports findings with exact
// file:line:col positions.
//
// Usage:
//
//	rentlint [-C dir] [-json] [-suppressed] [-list] [patterns ...]
//
// Patterns follow the go tool's directory form: "./..." (default),
// "./internal/lp/..." or "./internal/mip". Exit codes: 0 when clean, 1 when
// unsuppressed findings exist, 2 on load/type-check errors.
//
// Findings are suppressed with a reasoned comment on (or directly above)
// the offending line:
//
//	//lint:ignore rentlint/floatcmp exact zero is a skip-work sentinel
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"rentplan/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rentlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		chdir      = fs.String("C", "", "module root to lint (default: walk up from the working directory)")
		jsonOut    = fs.Bool("json", false, "emit diagnostics as a JSON array")
		suppressed = fs.Bool("suppressed", false, "also print findings neutralised by //lint:ignore")
		list       = fs.Bool("list", false, "list the analyzers and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "rentlint/%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	root := *chdir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "rentlint:", err)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := analysis.Run(root, patterns, analysis.All())
	if err != nil {
		fmt.Fprintln(stderr, "rentlint:", err)
		return 2
	}
	for _, e := range res.Errors {
		fmt.Fprintln(stderr, "rentlint: load error:", e)
	}
	shown := res.Unsuppressed()
	if *suppressed {
		shown = res.Diagnostics
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if shown == nil {
			shown = []analysis.Diagnostic{}
		}
		if err := enc.Encode(shown); err != nil {
			fmt.Fprintln(stderr, "rentlint:", err)
			return 2
		}
	} else {
		for _, d := range shown {
			fmt.Fprintln(stdout, d)
		}
		if n := len(res.Unsuppressed()); n > 0 {
			fmt.Fprintf(stdout, "rentlint: %d finding(s)\n", n)
		}
	}
	switch {
	case len(res.Errors) > 0:
		return 2
	case len(res.Unsuppressed()) > 0:
		return 1
	}
	return 0
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
