// Command rentlint runs the solver-aware static-analysis suite of
// internal/analysis over this module and reports findings with exact
// file:line:col positions.
//
// Usage:
//
//	rentlint [-C dir] [-json] [-suppressed] [-list] [-only names] [-skip names] [patterns ...]
//
// Patterns follow the go tool's directory form: "./..." (default),
// "./internal/lp/..." or "./internal/mip". -only and -skip take
// comma-separated analyzer names (with or without the rentlint/ prefix) and
// restrict the run to a subset of the suite; an unknown name is a usage
// error. Note that staleignore judges directives only against the analyzers
// that actually ran, so a narrowed run also narrows staleness reporting.
// Exit codes: 0 when clean, 1 when unsuppressed findings exist, 2 on
// load/type-check or usage errors.
//
// Findings are suppressed with a reasoned comment on (or directly above)
// the offending line:
//
//	//lint:ignore rentlint/floatcmp exact zero is a skip-work sentinel
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"rentplan/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rentlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		chdir      = fs.String("C", "", "module root to lint (default: walk up from the working directory)")
		jsonOut    = fs.Bool("json", false, "emit diagnostics as a JSON array")
		suppressed = fs.Bool("suppressed", false, "also print findings neutralised by //lint:ignore")
		list       = fs.Bool("list", false, "list the analyzers and exit")
		only       = fs.String("only", "", "comma-separated analyzers to run (default: all)")
		skip       = fs.String("skip", "", "comma-separated analyzers to exclude")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := selectAnalyzers(*only, *skip)
	if err != nil {
		fmt.Fprintln(stderr, "rentlint:", err)
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "rentlint/%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	root := *chdir
	if root == "" {
		var err error
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "rentlint:", err)
			return 2
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := analysis.Run(root, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "rentlint:", err)
		return 2
	}
	for _, e := range res.Errors {
		fmt.Fprintln(stderr, "rentlint: load error:", e)
	}
	shown := res.Unsuppressed()
	if *suppressed {
		shown = res.Diagnostics
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if shown == nil {
			shown = []analysis.Diagnostic{}
		}
		if err := enc.Encode(shown); err != nil {
			fmt.Fprintln(stderr, "rentlint:", err)
			return 2
		}
	} else {
		for _, d := range shown {
			fmt.Fprintln(stdout, d)
		}
		if n := len(res.Unsuppressed()); n > 0 {
			fmt.Fprintf(stdout, "rentlint: %d finding(s)\n", n)
		}
	}
	switch {
	case len(res.Errors) > 0:
		return 2
	case len(res.Unsuppressed()) > 0:
		return 1
	}
	return 0
}

// selectAnalyzers narrows the suite by the -only and -skip flags, keeping
// the suite's deterministic order. Names may carry the rentlint/ prefix.
func selectAnalyzers(only, skip string) ([]*analysis.Analyzer, error) {
	all := analysis.All()
	known := make(map[string]bool, len(all))
	for _, a := range all {
		known[a.Name] = true
	}
	parse := func(flagName, v string) (map[string]bool, error) {
		if v == "" {
			return nil, nil
		}
		set := make(map[string]bool)
		for _, n := range strings.Split(v, ",") {
			n = strings.TrimPrefix(strings.TrimSpace(n), "rentlint/")
			if n == "" {
				continue
			}
			if !known[n] {
				return nil, fmt.Errorf("-%s: unknown analyzer %q (run rentlint -list for the roster)", flagName, n)
			}
			set[n] = true
		}
		return set, nil
	}
	onlySet, err := parse("only", only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse("skip", skip)
	if err != nil {
		return nil, err
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if onlySet != nil && !onlySet[a.Name] {
			continue
		}
		if skipSet[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only/-skip left no analyzers to run")
	}
	return out, nil
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
