// Spot bidding: how the bid price shapes a stochastic rental plan (SRRP).
//
// The example summarises two months of simulated c1.medium spot-price
// history into a base distribution, then sweeps the bid from deep below to
// far above the market. For each bid it builds the bid-adjusted scenario
// tree of Eq. (10) — prices above the bid collapse into an out-of-bid state
// priced at the on-demand rate — solves SRRP, and reports how the expected
// cost and the here-and-now decision react to auction risk.
//
// Run with: go run ./examples/spotbidding
package main

import (
	"fmt"
	"log"

	"rentplan/internal/core"
	"rentplan/internal/demand"
	"rentplan/internal/market"
	"rentplan/internal/scenario"
	"rentplan/internal/stats"
)

func main() {
	const days = 60
	gen, err := market.NewGenerator(market.C1Medium, 2024)
	if err != nil {
		log.Fatal(err)
	}
	trace := gen.Trace(days)
	hourly, err := trace.Hourly(0, days*24)
	if err != nil {
		log.Fatal(err)
	}
	base := stats.NewDiscreteFromSamples(hourly, 1e-3)

	par := core.DefaultParams(market.C1Medium)
	lambda, err := par.OnDemandRate()
	if err != nil {
		log.Fatal(err)
	}
	dem := demand.Series(demand.NewTruncNormal(0.4, 0.2, 7), 6)
	rootPrice := hourly[len(hourly)-1]

	fmt.Printf("c1.medium spot history: mean $%.4f, support %d states, on-demand $%.2f\n",
		base.Mean(), base.Len(), lambda)
	fmt.Printf("current spot price: $%.4f; planning 1+5 stages\n\n", rootPrice)
	fmt.Printf("%10s %12s %12s %12s %14s\n", "bid", "P(out-bid)", "E[cost]", "root rents", "root alpha")

	quantiles := []float64{0.0, 0.25, 0.5, 0.75, 0.9, 1.0}
	for _, q := range quantiles {
		bid := stats.Quantile(hourly, q) // bid at a history quantile
		bids := []float64{bid, bid, bid, bid, bid}
		tree, err := scenario.Build(base, bids, lambda, scenario.BuildConfig{
			Stages:    5,
			MaxBranch: 4,
			RootPrice: rootPrice,
		})
		if err != nil {
			log.Fatal(err)
		}
		plan, err := core.SolveSRRP(par, tree, dem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.4f %12.2f %12.4f %12v %14.3f\n",
			bid, tree.OutOfBidProb(1), plan.ExpCost, plan.RootRent, plan.RootAlpha)
	}

	fmt.Println("\nReading the table: low bids make future spot capacity unreliable")
	fmt.Println("(high out-of-bid probability), so the plan front-loads generation at")
	fmt.Println("the known current price; generous bids relax the hedge and lower the")
	fmt.Println("expected cost toward the pure spot optimum.")
}
