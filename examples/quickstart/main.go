// Quickstart: solve a deterministic resource rental plan (DRRP) for one
// m1.large instance over a 24-hour horizon and compare it with renting
// naively every hour.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rentplan/internal/core"
	"rentplan/internal/demand"
	"rentplan/internal/market"
)

func main() {
	// 1. Pick a VM class and the paper's default parameters: Amazon
	//    pricing, input-output ratio Φ = 0.5, no initial inventory.
	par := core.DefaultParams(market.M1Large)

	// 2. The hourly data demand the application must serve: the paper's
	//    truncated normal N(0.4, 0.2) GB per hour.
	dem := demand.Series(demand.NewTruncNormal(0.4, 0.2, 42), 24)

	// 3. On-demand market: the rental price is the fixed hourly rate.
	lambda, err := par.OnDemandRate()
	if err != nil {
		log.Fatal(err)
	}
	prices := make([]float64, 24)
	for t := range prices {
		prices[t] = lambda
	}

	// 4. Solve. The optimal plan batches data generation: rent the
	//    instance only in some hours, produce ahead, and serve later
	//    demand from cloud storage.
	plan, err := core.SolveDRRP(par, prices, dem)
	if err != nil {
		log.Fatal(err)
	}
	noPlan, err := core.NoPlanCost(par, prices, dem)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("hour  demand  generate  stored  rented")
	for t := 0; t < 24; t++ {
		mark := ""
		if plan.Chi[t] {
			mark = "×"
		}
		fmt.Printf("%4d  %6.2f  %8.2f  %6.2f  %6s\n", t, dem[t], plan.Alpha[t], plan.Beta[t], mark)
	}
	fmt.Printf("\nDRRP cost    : $%.2f (compute $%.2f, storage+I/O $%.2f, transfer $%.2f)\n",
		plan.Cost, plan.Breakdown.Compute, plan.Breakdown.Holding, plan.Breakdown.Transfer())
	fmt.Printf("no-plan cost : $%.2f\n", noPlan.Cost)
	fmt.Printf("saving       : %.1f%%\n", 100*(1-plan.Cost/noPlan.Cost))
}
