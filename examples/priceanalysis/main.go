// Price analysis: the paper's Sec. IV-A predictability study end to end.
//
// The pipeline: generate a spot trace → flag box-whisker outliers → convert
// the irregular update feed to an hourly series → check stationarity and
// decompose seasonality → inspect ACF/PACF → fit a SARIMA model (small AIC
// search) → produce a day-ahead forecast and compare its MSPE against the
// naive mean forecast. The punchline matches the paper: the best
// statistical prediction is only marginally better than the mean, which is
// why SRRP plans with distributions instead of point forecasts.
//
// Run with: go run ./examples/priceanalysis
package main

import (
	"fmt"
	"log"

	"rentplan/internal/arima"
	"rentplan/internal/market"
	"rentplan/internal/stats"
	"rentplan/internal/timeseries"
)

func main() {
	const days = 90
	gen, err := market.NewGenerator(market.C1Medium, 31)
	if err != nil {
		log.Fatal(err)
	}
	trace := gen.Trace(days)

	// Step 1: outliers in the raw update series (Fig. 3).
	vals := trace.Events.Values()
	five := stats.BoxWhisker(vals)
	fmt.Printf("update events: %d, outliers: %d (%.2f%%)\n",
		len(vals), len(five.Outliers), 100*five.OutlierFrac())
	fmt.Printf("quartiles: q1=$%.4f med=$%.4f q3=$%.4f\n\n", five.Q1, five.Median, five.Q3)

	// Step 2: irregular events → hourly series (Fig. 4's resampling).
	hourly, err := trace.Hourly(0, days*24)
	if err != nil {
		log.Fatal(err)
	}
	counts := trace.Events.DailyUpdateCounts(0, days)
	mn, mx := counts[0], counts[0]
	for _, c := range counts {
		if c < mn {
			mn = c
		}
		if c > mx {
			mx = c
		}
	}
	fmt.Printf("hourly series: %d points; daily update counts range %d..%d\n\n", len(hourly), mn, mx)

	// Step 3: the estimation window and its distribution (Fig. 5).
	histLen := len(hourly) - 24
	hist, actual := hourly[:histLen], hourly[histLen:]
	sw, err := stats.ShapiroWilk(hist[:min(len(hist), 5000)])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Shapiro-Wilk: W=%.4f p=%.3g → normality rejected: %v\n\n",
		sw.Stat, sw.PValue, sw.Rejects(0.01))

	// Step 4: stationarity and decomposition (Fig. 6).
	fmt.Printf("weakly stationary: %v\n", timeseries.IsWeaklyStationary(stats.TrimOutliers(hist), 0.5))
	dec, err := timeseries.Decompose(hist, 24)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seasonal strength: %.3f, trend strength: %.3f\n\n",
		dec.SeasonalStrength(), dec.TrendStrength())

	// Step 5: correlograms (Fig. 7).
	acf, err := timeseries.ACF(hist, 6)
	if err != nil {
		log.Fatal(err)
	}
	band := timeseries.ConfidenceBand(len(hist))
	fmt.Printf("ACF lags 1..6: %.3f %.3f %.3f %.3f %.3f %.3f (band ±%.3f)\n\n",
		acf[1], acf[2], acf[3], acf[4], acf[5], acf[6], band)

	// Step 6: model selection and day-ahead forecast (Fig. 8). The small
	// grid mirrors auto.arima's search within order constraints.
	best, cands, err := arima.AutoFit(hist, arima.AutoOptions{
		MaxP: 2, MaxQ: 1, WithMean: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best model by AIC: %s (AIC %.1f) out of %d candidates\n", best.Spec, best.AIC, len(cands))
	fc, err := best.Forecast(24)
	if err != nil {
		log.Fatal(err)
	}
	mspeModel := arima.MSPE(fc.Mean, actual)
	mspeMean := arima.MSPE(arima.MeanForecast(hist, 24), actual)
	fmt.Printf("day-ahead MSPE: model=%.3g, mean-forecast=%.3g (improvement %.1f%%)\n",
		mspeModel, mspeMean, 100*(1-mspeModel/mspeMean))
	fmt.Println("\nConclusion (matches the paper): the fitted model barely beats the")
	fmt.Println("historical mean — point forecasts cannot parameterise DRRP reliably,")
	fmt.Println("motivating the stochastic SRRP formulation.")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
