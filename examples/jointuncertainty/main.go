// Joint uncertainty: planning when both spot prices AND workload are
// random — the paper's stated future-work direction, built on the same
// scenario-tree machinery.
//
// The example builds trees whose stages branch over the product of
// bid-adjusted price states and discrete demand states, solves the extended
// SRRP exactly, verifies the expected cost by Monte Carlo, and reports the
// Value of the Stochastic Solution (VSS): how much explicitly modelling the
// price distribution saves over planning with expected prices.
//
// Run with: go run ./examples/jointuncertainty
package main

import (
	"fmt"
	"log"

	"rentplan/internal/core"
	"rentplan/internal/market"
	"rentplan/internal/scenario"
	"rentplan/internal/stats"
)

func main() {
	const days = 60
	gen, err := market.NewGenerator(market.C1Medium, 777)
	if err != nil {
		log.Fatal(err)
	}
	trace := gen.Trace(days)
	hourly, err := trace.Hourly(0, days*24)
	if err != nil {
		log.Fatal(err)
	}
	base := stats.NewDiscreteFromSamples(hourly, 1e-3)
	par := core.DefaultParams(market.C1Medium)
	lambda, err := par.OnDemandRate()
	if err != nil {
		log.Fatal(err)
	}
	bid := stats.Quantile(hourly, 0.5)
	bids := []float64{bid, bid, bid, bid}

	// Demand is uncertain too: quiet, normal or busy hours.
	demStates := stats.Discrete{
		Values: []float64{0.15, 0.40, 0.90},
		Probs:  []float64{0.25, 0.50, 0.25},
	}
	tree, dem, err := scenario.BuildJoint(base, bids, lambda, demStates, 0.4,
		scenario.BuildConfig{Stages: 4, MaxBranch: 3, RootPrice: hourly[len(hourly)-1]})
	if err != nil {
		log.Fatal(err)
	}
	plan, err := core.SolveSRRPVertexDemands(par, tree, dem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joint price×demand tree: %d vertices over %d stages\n", tree.N(), tree.Stages())
	fmt.Printf("here-and-now: rent=%v, generate %.3f GB (demand now 0.40 GB)\n",
		plan.RootRent, plan.RootAlpha)
	fmt.Printf("expected cost: $%.4f (compute %.0f%%, storage+I/O %.0f%%, transfer %.0f%%)\n\n",
		plan.ExpCost,
		100*plan.Breakdown.Compute/plan.ExpCost,
		100*plan.Breakdown.Holding/plan.ExpCost,
		100*plan.Breakdown.Transfer()/plan.ExpCost)

	// Sanity-check the optimum by Monte Carlo on a price-only tree (known
	// stage demands), then quantify the value of stochastic planning.
	priceTree, err := scenario.Build(base, bids, lambda, scenario.BuildConfig{
		Stages: 4, MaxBranch: 3, RootPrice: hourly[len(hourly)-1]})
	if err != nil {
		log.Fatal(err)
	}
	stageDem := []float64{0.4, 0.4, 0.4, 0.4, 0.4}
	pplan, err := core.SolveSRRP(par, priceTree, stageDem)
	if err != nil {
		log.Fatal(err)
	}
	mc, se, err := core.EvaluateStochasticPlanMC(par, pplan, stageDem, stats.NewRNG(9), 50000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("price-only plan: expected cost $%.4f, Monte-Carlo $%.4f ± %.4f\n\n", pplan.ExpCost, mc, se)

	// Value of the Stochastic Solution, in a regime where in-tree
	// adaptivity matters: an expensive class (big λ − spot gap) with a
	// moderate bid, so pre-producing in cheap states hedges the out-of-bid
	// branches.
	parX := core.DefaultParams(market.M1XLarge)
	baseX := stats.Discrete{
		Values: []float64{0.224, 0.232, 0.240, 0.248, 0.256},
		Probs:  []float64{0.1, 0.2, 0.4, 0.2, 0.1},
	}
	lambdaX, _ := parX.OnDemandRate()
	treeX, err := scenario.Build(baseX, []float64{0.232, 0.232, 0.232, 0.232, 0.232}, lambdaX,
		scenario.BuildConfig{Stages: 5, MaxBranch: 4, RootPrice: 0.240})
	if err != nil {
		log.Fatal(err)
	}
	demX := []float64{0.4, 0.4, 0.4, 0.4, 0.4, 0.4}
	vss, evCost, spCost, err := core.ValueOfStochasticSolution(parX, treeX, demX)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VSS (m1.xlarge, bid at the 30%% quantile): $%.4f\n", vss)
	fmt.Printf("  expected-value policy $%.4f vs SRRP $%.4f (%.1f%% saved in-tree)\n",
		evCost, spCost, 100*vss/evCost)
	fmt.Println("\nAn honest reproduction note: with known stage demands the in-tree VSS")
	fmt.Println("is modest — inventory is a shared state, so most hedging happens before")
	fmt.Println("prices are revealed. SRRP's large advantage in Fig. 12(a) comes from")
	fmt.Println("re-planning each hour with the out-of-bid risk priced in (closed-loop),")
	fmt.Println("which the rollinghorizon example demonstrates.")
}
