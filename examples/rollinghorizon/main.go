// Rolling horizon: a week-long ASP simulation on the spot market.
//
// An application service provider serves a diurnal data demand from one
// m1.large instance for seven days. Four policies are compared against the
// same realised spot-price trace:
//
//   - oracle:      DRRP with perfect knowledge of future spot prices
//   - on-demand:   ignore the spot market, pay the fixed rate λ
//   - det (DRRP):  plan once with mean-price bids, pay λ when out of bid
//   - sto (SRRP):  re-plan a 6-hour scenario tree in a rolling horizon
//
// Run with: go run ./examples/rollinghorizon
package main

import (
	"fmt"
	"log"

	"rentplan/internal/core"
	"rentplan/internal/demand"
	"rentplan/internal/market"
	"rentplan/internal/stats"
)

func main() {
	const (
		histDays = 60
		evalDays = 7
		T        = evalDays * 24
	)
	gen, err := market.NewGenerator(market.M1Large, 555)
	if err != nil {
		log.Fatal(err)
	}
	trace := gen.Trace(histDays + evalDays)
	all, err := trace.Hourly(0, (histDays+evalDays)*24)
	if err != nil {
		log.Fatal(err)
	}
	hist, actual := all[:histDays*24], all[histDays*24:]

	// A day/night workload: busier during the day, quieter at night.
	dem := demand.Series(demand.Diurnal{Base: 0.4, Amp: 0.6, Phase: 2}, T)

	cfg := &core.ExecConfig{
		Par:        core.DefaultParams(market.M1Large),
		Actual:     actual,
		Demand:     dem,
		Base:       stats.NewDiscreteFromSamples(hist, 1e-3),
		TreeStages: 5,
		MaxBranch:  4,
		Replan:     1, // revise the stochastic plan every hour
	}
	bids := make([]float64, T)
	mean := stats.Mean(hist)
	for t := range bids {
		bids[t] = mean
	}

	oracle, err := core.RunOracle(cfg)
	if err != nil {
		log.Fatal(err)
	}
	onDemand, err := core.RunOnDemand(cfg)
	if err != nil {
		log.Fatal(err)
	}
	det, err := core.RunDeterministic(cfg, bids)
	if err != nil {
		log.Fatal(err)
	}
	sto, err := core.RunStochastic(cfg, bids)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("m1.large, %d-day evaluation, diurnal demand, bid = hist mean $%.4f\n\n", evalDays, mean)
	fmt.Printf("%-12s %10s %10s %8s %8s %9s\n", "policy", "cost", "overpay", "rented", "out-bid", "compute$")
	show := func(name string, o *core.Outcome) {
		fmt.Printf("%-12s %9.2f$ %9.1f%% %8d %8d %9.2f\n",
			name, o.Cost, 100*(o.Cost-oracle.Cost)/oracle.Cost,
			o.RentSlots, o.OutOfBidSlots, o.Breakdown.Compute)
	}
	show("oracle", oracle)
	show("on-demand", onDemand)
	show("det (DRRP)", det)
	show("sto (SRRP)", sto)

	fmt.Println("\nThe stochastic rolling-horizon planner tracks the oracle closely: it")
	fmt.Println("buys at observed spot prices and hedges future slots against the")
	fmt.Println("out-of-bid event, while the deterministic plan commits to bids that")
	fmt.Println("lose whenever the realised price exceeds the historical mean.")
}
