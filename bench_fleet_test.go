package rentplan_test

// BenchmarkFleet is the headline run behind `make bench-fleet`: a >= 100k
// ASP population over multi-week epochs, comparing the event-driven sharded
// core against the naive per-ASP slot-polling walk it replaces. The
// benchmark enforces the two fleet acceptance gates itself:
//
//   - >= 10x ASP-slots/sec for the event-driven core vs the polling
//     baseline on the same population and market, and
//   - bit-identical results across shard counts {1, 4, 8}.
//
// When BENCH_FLEET_OUT is set the report is written there (the Makefile
// points it at BENCH_fleet.json).

import (
	"encoding/json"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"rentplan/internal/fleet"
	"rentplan/internal/market"
)

const (
	benchFleetASPs   = 100_000
	benchFleetHours  = 168
	benchFleetEpochs = 16
)

func benchFleetConfig(b *testing.B, shards int) *fleet.Config {
	b.Helper()
	pop, err := fleet.SamplePopulation(benchFleetASPs, market.C1Medium, 42)
	if err != nil {
		b.Fatal(err)
	}
	return &fleet.Config{
		Class:      market.C1Medium,
		Population: pop,
		Shards:     shards,
		Epochs:     benchFleetEpochs,
		EpochHours: benchFleetHours,
		Feedback:   0.3,
		Seed:       7,
	}
}

func BenchmarkFleet(b *testing.B) {
	var (
		evRes, plRes    *fleet.Result
		evSec, plSec    float64
		epochMS         []float64
		identityChecked bool
	)
	for i := 0; i < b.N; i++ {
		// Event-driven sharded core, timing each epoch via the OnEpoch
		// hook (the fleet package itself never reads a clock).
		cfg := benchFleetConfig(b, 4)
		epochMS = epochMS[:0]
		mark := time.Now()
		cfg.OnEpoch = func(fleet.EpochReport) {
			epochMS = append(epochMS, float64(time.Since(mark).Microseconds())/1000)
			mark = time.Now()
		}
		start := time.Now()
		var err error
		evRes, err = fleet.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		evSec = time.Since(start).Seconds()

		// Naive per-ASP slot-polling baseline on the same population.
		start = time.Now()
		plRes, err = fleet.RunPolling(benchFleetConfig(b, 1))
		if err != nil {
			b.Fatal(err)
		}
		plSec = time.Since(start).Seconds()

		// The comparison is only honest if both engines simulated the same
		// market: identical wake counts and feedback trajectory.
		if evRes.Wakes != plRes.Wakes || evRes.FinalBaseSpot != plRes.FinalBaseSpot {
			b.Fatalf("engines diverged: wakes %d/%d, final base %v/%v",
				evRes.Wakes, plRes.Wakes, evRes.FinalBaseSpot, plRes.FinalBaseSpot)
		}

		// Shard-count bit-identity gate, checked once per benchmark run on
		// the full population.
		if !identityChecked {
			identityChecked = true
			for _, shards := range []int{1, 8} {
				alt, err := fleet.Run(benchFleetConfig(b, shards))
				if err != nil {
					b.Fatal(err)
				}
				if alt.TotalCost != evRes.TotalCost || alt.FinalBaseSpot != evRes.FinalBaseSpot ||
					alt.Wakes != evRes.Wakes || alt.DemandGB != evRes.DemandGB {
					b.Fatalf("shards=%d aggregate diverges from shards=4", shards)
				}
				for j := range alt.PerASP {
					if alt.PerASP[j] != evRes.PerASP[j] {
						b.Fatalf("shards=%d ASP %d outcome diverges from shards=4", shards, j)
					}
				}
				for e := range alt.Epochs {
					if alt.Epochs[e] != evRes.Epochs[e] {
						b.Fatalf("shards=%d epoch %d diverges from shards=4", shards, e)
					}
				}
			}
		}
	}

	evRate := float64(evRes.SlotsSimulated) / evSec
	plRate := float64(plRes.SlotsSimulated) / plSec
	speedup := evRate / plRate
	sort.Float64s(epochMS)
	p50 := epochMS[len(epochMS)/2]
	b.ReportMetric(evRate, "ASP-slots/sec")
	b.ReportMetric(plRate, "polling-slots/sec")
	b.ReportMetric(speedup, "speedup")
	b.ReportMetric(p50, "p50-epoch-ms")
	b.ReportMetric(100*float64(evRes.Wakes)/float64(evRes.SlotsSimulated), "wake-%")

	// Acceptance gate: the event-driven core must beat slot polling by at
	// least 10x on ASP-slots/sec at this population size.
	if speedup < 10 {
		b.Fatalf("event-driven core only %.1fx faster than slot polling (want >= 10x): %.3g vs %.3g ASP-slots/sec",
			speedup, evRate, plRate)
	}

	if out := os.Getenv("BENCH_FLEET_OUT"); out != "" {
		doc := map[string]interface{}{
			"benchmark": "BenchmarkFleet",
			"goos":      runtime.GOOS,
			"goarch":    runtime.GOARCH,
			"cpus":      runtime.GOMAXPROCS(0),
			"config": map[string]interface{}{
				"asps":        benchFleetASPs,
				"epoch_hours": benchFleetHours,
				"epochs":      benchFleetEpochs,
				"shards":      4,
				"feedback":    0.3,
			},
			"results": map[string]interface{}{
				"asp_slots":             evRes.SlotsSimulated,
				"event_slots_per_sec":   evRate,
				"polling_slots_per_sec": plRate,
				"speedup":               speedup,
				"p50_epoch_ms":          p50,
				"wakes":                 evRes.Wakes,
				"wake_fraction":         float64(evRes.Wakes) / float64(evRes.SlotsSimulated),
				"final_base_spot":       evRes.FinalBaseSpot,
				"total_cost":            evRes.TotalCost,
			},
			"notes": "Event-driven sharded fleet core vs the naive per-ASP slot-polling walk on the same " +
				"100k-ASP population and market (identical wake counts and feedback trajectory, verified " +
				"in-bench). The event core pays only for price-change crossings and plan expiries: bid-sorted " +
				"state makes each change's flip band a contiguous sweep, ASPs whose bids fall outside the " +
				"epoch's price range settle whole epochs in closed form, and in-stride slots integrate from " +
				"prefix sums. Polling visits every ASP-slot with per-slot demand interface dispatch, as the " +
				"single-agent rolling executors do. Shard counts {1,4,8} are verified bit-identical in-bench " +
				"(per-ASP outcomes, epoch reports, aggregate cost).",
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s", out)
	}
}
